//! Structured event journal: per-thread lock-free ring buffers of trace
//! events, drained into Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a self-describing summary.
//!
//! ## Design
//!
//! Every thread that emits an event lazily registers a *lane*: a fixed-size
//! ring of plain-old-data slots made entirely of `AtomicU64`s. The owning
//! thread is the only writer, so a push is a handful of relaxed stores plus
//! two release stores of the slot's sequence number (invalidate, write
//! fields, publish). The drainer validates the sequence before and after
//! reading a slot and skips torn or overwritten entries, so no lock is ever
//! taken on the hot path. When a ring wraps, the oldest events are
//! overwritten — the journal keeps the newest [`RING_CAPACITY`] events per
//! thread and counts what it dropped.
//!
//! Event names and argument keys are interned to `u32` ids so slots stay
//! POD; ids resolve back to strings at drain time.
//!
//! ## Cost when off
//!
//! Every emit entry point starts with one relaxed atomic load of the
//! `enabled` flag and returns immediately when the journal is off. No lane
//! is registered, no memory is allocated, and nothing is interned until the
//! first event is actually recorded.
//!
//! ## Usage
//!
//! ```
//! dpz_telemetry::trace::start();
//! {
//!     let _s = dpz_telemetry::span!("work"); // spans feed the journal
//!     dpz_telemetry::trace::instant("checkpoint");
//!     dpz_telemetry::trace::counter("queue_depth", 3.0);
//! }
//! dpz_telemetry::trace::stop();
//! let trace = dpz_telemetry::trace::drain();
//! let chrome_json = dpz_telemetry::trace::to_chrome_json(&trace);
//! ```

use std::cell::OnceCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::json;

/// Events retained per thread before the ring wraps (power of two).
pub const RING_CAPACITY: usize = 1 << 14;

/// Maximum arguments carried by one event (slots are fixed-size).
pub const MAX_ARGS: usize = 2;

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed timed region: `ts_ns..ts_ns + dur_ns`.
    Span,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (`value`).
    Counter,
}

/// One materialized journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the journal epoch (start of the event for spans).
    pub ts_ns: u64,
    /// Duration in nanoseconds (spans only; 0 otherwise).
    pub dur_ns: u64,
    /// Counter value (counters only; 0.0 otherwise).
    pub value: f64,
    /// Lane id of the emitting thread (see [`Trace::threads`]).
    pub thread: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name (dotted span path, counter name, …).
    pub name: String,
    /// Up to [`MAX_ARGS`] key/value annotations.
    pub args: Vec<(String, f64)>,
}

/// One registered thread lane.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadInfo {
    /// Stable per-process lane id (used as `tid` in the Chrome export).
    pub tid: u64,
    /// Thread name at registration time (`main`, `dpz-worker-3`, …).
    pub name: String,
}

/// Everything drained from the journal: events across all lanes, sorted by
/// start timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All events, ordered by `ts_ns`.
    pub events: Vec<TraceEvent>,
    /// The lanes that contributed events (plus any registered but idle).
    pub threads: Vec<ThreadInfo>,
    /// Events lost to ring wraparound since the previous drain.
    pub dropped: u64,
}

// ---------------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

fn intern(name: &str) -> u32 {
    if let Some(&id) = interner().read().expect("interner lock").map.get(name) {
        return id;
    }
    let mut w = interner().write().expect("interner lock");
    if let Some(&id) = w.map.get(name) {
        return id;
    }
    let id = w.names.len() as u32;
    w.names.push(name.to_string());
    w.map.insert(name.to_string(), id);
    id
}

fn resolve(id: u32) -> String {
    interner()
        .read()
        .expect("interner lock")
        .names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("?{id}"))
}

// ---------------------------------------------------------------------------
// Slot encoding
// ---------------------------------------------------------------------------

// meta packs: name_id (24 bits) | kind (8 bits) | arg1_key (16) | arg2_key (16).
// Argument keys are intern-id + 1, so 0 means "no argument".
const NAME_BITS: u64 = 24;
const NAME_MASK: u64 = (1 << NAME_BITS) - 1;

fn pack_meta(kind: EventKind, name_id: u32, arg_keys: [u16; MAX_ARGS]) -> u64 {
    let kind = match kind {
        EventKind::Span => 0u64,
        EventKind::Instant => 1,
        EventKind::Counter => 2,
    };
    (name_id as u64 & NAME_MASK)
        | (kind << NAME_BITS)
        | ((arg_keys[0] as u64) << 32)
        | ((arg_keys[1] as u64) << 48)
}

fn unpack_meta(meta: u64) -> (EventKind, u32, [u16; MAX_ARGS]) {
    let kind = match (meta >> NAME_BITS) & 0xff {
        0 => EventKind::Span,
        1 => EventKind::Instant,
        _ => EventKind::Counter,
    };
    let name_id = (meta & NAME_MASK) as u32;
    let keys = [
        ((meta >> 32) & 0xffff) as u16,
        ((meta >> 48) & 0xffff) as u16,
    ];
    (kind, name_id, keys)
}

/// Intern an argument key into the 16-bit id space (0 = absent). Keys that
/// overflow the space are dropped rather than corrupting another key.
fn arg_key_id(key: &str) -> u16 {
    let id = intern(key) as u64 + 1;
    if id <= u16::MAX as u64 {
        id as u16
    } else {
        0
    }
}

#[derive(Debug)]
struct Slot {
    /// 0 = being written; `index + 1` = published for ring index `index`.
    seq: AtomicU64,
    ts: AtomicU64,
    /// Span duration in ns, or counter value `f64` bits.
    payload: AtomicU64,
    meta: AtomicU64,
    arg_bits: [AtomicU64; MAX_ARGS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            payload: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            arg_bits: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

#[derive(Debug)]
struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever pushed to this ring (monotonic).
    head: AtomicU64,
    /// Events already handed out by previous drains.
    drained: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct RawEvent {
    ts: u64,
    payload: u64,
    meta: u64,
    args: [u64; MAX_ARGS],
}

impl Ring {
    fn new() -> Ring {
        Ring {
            slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Push one event. Must only be called from the lane's owner thread.
    fn push(&self, ts: u64, payload: u64, meta: u64, args: [u64; MAX_ARGS]) {
        let index = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(index as usize) & (RING_CAPACITY - 1)];
        // Invalidate, fill, publish: a concurrent drainer observing seq !=
        // index+1 on either side of its reads discards the slot.
        slot.seq.store(0, Ordering::Release);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        for (dst, src) in slot.arg_bits.iter().zip(args) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(index + 1, Ordering::Release);
        self.head.store(index + 1, Ordering::Release);
    }

    /// Read every undrained event still present in the ring. Returns the
    /// number of events lost to wraparound since the last drain.
    fn drain_into(&self, out: &mut Vec<RawEvent>) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let drained = self.drained.load(Ordering::Relaxed);
        let start = head.saturating_sub(RING_CAPACITY as u64).max(drained);
        for index in start..head {
            let slot = &self.slots[(index as usize) & (RING_CAPACITY - 1)];
            if slot.seq.load(Ordering::Acquire) != index + 1 {
                continue; // overwritten or mid-write
            }
            let raw = RawEvent {
                ts: slot.ts.load(Ordering::Relaxed),
                payload: slot.payload.load(Ordering::Relaxed),
                meta: slot.meta.load(Ordering::Relaxed),
                args: [
                    slot.arg_bits[0].load(Ordering::Relaxed),
                    slot.arg_bits[1].load(Ordering::Relaxed),
                ],
            };
            if slot.seq.load(Ordering::Acquire) != index + 1 {
                continue; // torn by a concurrent wraparound
            }
            out.push(raw);
        }
        self.drained.store(head, Ordering::Relaxed);
        start - drained
    }
}

#[derive(Debug)]
struct Lane {
    tid: u64,
    name: String,
    ring: Ring,
}

struct Journal {
    enabled: AtomicBool,
    epoch: Instant,
    lanes: Mutex<Vec<Arc<Lane>>>,
    next_tid: AtomicU64,
}

fn journal() -> &'static Journal {
    static JOURNAL: OnceLock<Journal> = OnceLock::new();
    JOURNAL.get_or_init(|| Journal {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        lanes: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(1),
    })
}

thread_local! {
    static LANE: OnceCell<Arc<Lane>> = const { OnceCell::new() };
}

fn with_lane(f: impl FnOnce(&Lane)) {
    LANE.with(|cell| {
        let lane = cell.get_or_init(|| {
            let j = journal();
            let tid = j.next_tid.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let lane = Arc::new(Lane {
                tid,
                name,
                ring: Ring::new(),
            });
            j.lanes
                .lock()
                .expect("journal lanes lock")
                .push(Arc::clone(&lane));
            lane
        });
        f(lane);
    });
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Whether the journal is currently collecting events (one relaxed load).
#[inline]
pub fn journal_enabled() -> bool {
    journal().enabled.load(Ordering::Relaxed)
}

/// Start collecting events.
pub fn start() {
    journal().enabled.store(true, Ordering::Relaxed);
}

/// Stop collecting events (already-recorded events stay drainable).
pub fn stop() {
    journal().enabled.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the journal epoch (process-wide monotonic origin).
#[inline]
pub fn now_ns() -> u64 {
    journal().epoch.elapsed().as_nanos() as u64
}

fn emit(kind: EventKind, name: &str, ts: u64, payload: u64, args: &[(&str, f64)]) {
    let name_id = intern(name);
    if name_id as u64 > NAME_MASK {
        return; // out of name-id space; drop rather than mislabel
    }
    let mut keys = [0u16; MAX_ARGS];
    let mut bits = [0u64; MAX_ARGS];
    for (i, (key, value)) in args.iter().take(MAX_ARGS).enumerate() {
        keys[i] = arg_key_id(key);
        bits[i] = value.to_bits();
    }
    let meta = pack_meta(kind, name_id, keys);
    with_lane(|lane| lane.ring.push(ts, payload, meta, bits));
}

/// Record a completed timed region that ended now and lasted `dur_ns`.
pub fn complete(name: &str, dur_ns: u64, args: &[(&str, f64)]) {
    if !journal_enabled() {
        return;
    }
    let start = now_ns().saturating_sub(dur_ns);
    emit(EventKind::Span, name, start, dur_ns, args);
}

/// Record a point-in-time marker.
pub fn instant(name: &str) {
    instant_with(name, &[]);
}

/// Record a point-in-time marker with up to [`MAX_ARGS`] annotations.
pub fn instant_with(name: &str, args: &[(&str, f64)]) {
    if !journal_enabled() {
        return;
    }
    emit(EventKind::Instant, name, now_ns(), 0, args);
}

/// Record a counter sample (rendered as a counter track in Perfetto).
pub fn counter(name: &str, value: f64) {
    if !journal_enabled() {
        return;
    }
    emit(EventKind::Counter, name, now_ns(), value.to_bits(), &[]);
}

/// Drain all undrained events from every lane, sorted by `ts_ns`. Does not
/// stop collection; events recorded after the drain are returned next time.
pub fn drain() -> Trace {
    let j = journal();
    let lanes = j.lanes.lock().expect("journal lanes lock");
    let mut trace = Trace::default();
    for lane in lanes.iter() {
        let mut raw = Vec::new();
        trace.dropped += lane.ring.drain_into(&mut raw);
        trace.threads.push(ThreadInfo {
            tid: lane.tid,
            name: lane.name.clone(),
        });
        for ev in raw {
            let (kind, name_id, keys) = unpack_meta(ev.meta);
            let mut args = Vec::new();
            for (key_id, bits) in keys.iter().zip(ev.args) {
                if *key_id != 0 {
                    args.push((resolve(*key_id as u32 - 1), f64::from_bits(bits)));
                }
            }
            trace.events.push(TraceEvent {
                ts_ns: ev.ts,
                dur_ns: if kind == EventKind::Span {
                    ev.payload
                } else {
                    0
                },
                value: if kind == EventKind::Counter {
                    f64::from_bits(ev.payload)
                } else {
                    0.0
                },
                thread: lane.tid,
                kind,
                name: resolve(name_id),
                args,
            });
        }
    }
    drop(lanes);
    trace.events.sort_by_key(|e| e.ts_ns);
    trace.threads.sort_by_key(|t| t.tid);
    trace
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

/// Latency/throughput digest for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name (dotted path).
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Median duration, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile duration, milliseconds.
    pub p99_ms: f64,
    /// Total time across all spans, milliseconds.
    pub total_ms: f64,
    /// Throughput derived from `bytes` annotations, when present.
    pub mb_per_s: Option<f64>,
}

/// Self-describing digest of a [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Per-span-name latency stats, sorted by total time descending.
    pub spans: Vec<SpanStats>,
    /// Last sampled value per counter name.
    pub counters: Vec<(String, f64)>,
    /// Number of thread lanes in the trace.
    pub threads: usize,
    /// Events lost to ring wraparound.
    pub dropped: u64,
}

fn percentile_ns(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

/// Compute per-span p50/p99/total latency and `bytes`-derived throughput.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut durations: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut bytes: BTreeMap<&str, f64> = BTreeMap::new();
    let mut counters: BTreeMap<&str, f64> = BTreeMap::new();
    for ev in &trace.events {
        match ev.kind {
            EventKind::Span => {
                durations.entry(&ev.name).or_default().push(ev.dur_ns);
                for (key, value) in &ev.args {
                    if key == "bytes" {
                        *bytes.entry(&ev.name).or_default() += value;
                    }
                }
            }
            EventKind::Counter => {
                counters.insert(&ev.name, ev.value);
            }
            EventKind::Instant => {}
        }
    }
    let mut spans: Vec<SpanStats> = durations
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            let total_ns: u64 = durs.iter().sum();
            let mb_per_s = bytes.get(name).and_then(|&b| {
                if total_ns > 0 && b > 0.0 {
                    Some(b / (total_ns as f64 / 1e9) / 1e6)
                } else {
                    None
                }
            });
            SpanStats {
                name: name.to_string(),
                count: durs.len() as u64,
                p50_ms: percentile_ns(&durs, 0.50) / 1e6,
                p99_ms: percentile_ns(&durs, 0.99) / 1e6,
                total_ms: total_ns as f64 / 1e6,
                mb_per_s,
            }
        })
        .collect();
    spans.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
    TraceSummary {
        spans,
        counters: counters
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        threads: trace.threads.len(),
        dropped: trace.dropped,
    }
}

fn summary_json(summary: &TraceSummary) -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, s) in summary.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"count\":{},\"p50_ms\":{:.6},\"p99_ms\":{:.6},\"total_ms\":{:.6}",
            json::escape(&s.name),
            s.count,
            s.p50_ms,
            s.p99_ms,
            s.total_ms
        ));
        if let Some(mbps) = s.mb_per_s {
            out.push_str(&format!(",\"mb_per_s\":{mbps:.3}"));
        }
        out.push('}');
    }
    out.push_str("],\"counters\":[");
    for (i, (name, value)) in summary.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name)
        ));
    }
    out.push_str(&format!(
        "],\"threads\":{},\"dropped_events\":{}}}",
        summary.threads, summary.dropped
    ));
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

fn chrome_args(args: &[(String, f64)]) -> String {
    let pairs: Vec<String> = args
        .iter()
        .map(|(k, v)| {
            let v = if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            };
            format!("\"{}\":{v}", json::escape(k))
        })
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Render a trace in the Chrome trace-event JSON object format. The result
/// loads in Perfetto / `chrome://tracing`; the digest from [`summarize`] is
/// embedded under the extra top-level `dpzSummary` key (the format allows
/// unknown keys).
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"dpz\"}}",
    );
    for thread in &trace.threads {
        out.push_str(&format!(
            ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            thread.tid,
            json::escape(&thread.name)
        ));
    }
    for ev in &trace.events {
        let ts_us = ev.ts_ns as f64 / 1e3;
        match ev.kind {
            EventKind::Span => {
                out.push_str(&format!(
                    ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"dur\":{:.3},\"name\":\"{}\",\"cat\":\"dpz\",\"args\":{}}}",
                    ev.thread,
                    ev.dur_ns as f64 / 1e3,
                    json::escape(&ev.name),
                    chrome_args(&ev.args)
                ));
            }
            EventKind::Instant => {
                out.push_str(&format!(
                    ",\n{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"name\":\"{}\",\"cat\":\"dpz\",\"s\":\"t\",\"args\":{}}}",
                    ev.thread,
                    json::escape(&ev.name),
                    chrome_args(&ev.args)
                ));
            }
            EventKind::Counter => {
                let value = if ev.value.is_finite() {
                    format!("{}", ev.value)
                } else {
                    "null".to_string()
                };
                out.push_str(&format!(
                    ",\n{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"name\":\"{}\",\"args\":{{\"value\":{value}}}}}",
                    ev.thread,
                    json::escape(&ev.name)
                ));
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"dpzSummary\":");
    out.push_str(&summary_json(&summarize(trace)));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_packing_round_trips() {
        for kind in [EventKind::Span, EventKind::Instant, EventKind::Counter] {
            let meta = pack_meta(kind, 123_456, [7, 65_535]);
            let (k, name_id, keys) = unpack_meta(meta);
            assert_eq!(k, kind);
            assert_eq!(name_id, 123_456);
            assert_eq!(keys, [7, 65_535]);
        }
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("trace_test_stage1");
        let b = intern("trace_test_stage2");
        assert_ne!(a, b);
        assert_eq!(intern("trace_test_stage1"), a);
        assert_eq!(resolve(a), "trace_test_stage1");
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let durs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&durs, 0.50), 51.0); // round half up on 0-based rank
        assert_eq!(percentile_ns(&durs, 0.99), 99.0);
        assert_eq!(percentile_ns(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_derives_throughput_from_bytes() {
        let trace = Trace {
            events: vec![TraceEvent {
                ts_ns: 0,
                dur_ns: 1_000_000_000, // 1 s
                value: 0.0,
                thread: 1,
                kind: EventKind::Span,
                name: "compress".to_string(),
                args: vec![("bytes".to_string(), 8_000_000.0)],
            }],
            threads: vec![ThreadInfo {
                tid: 1,
                name: "main".to_string(),
            }],
            dropped: 0,
        };
        let summary = summarize(&trace);
        assert_eq!(summary.spans.len(), 1);
        let s = &summary.spans[0];
        assert_eq!(s.count, 1);
        assert!((s.total_ms - 1000.0).abs() < 1e-9);
        assert!((s.mb_per_s.unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    ts_ns: 1_500,
                    dur_ns: 2_500,
                    value: 0.0,
                    thread: 1,
                    kind: EventKind::Span,
                    name: "stage1.decompose_dct".to_string(),
                    args: vec![("bytes".to_string(), 64.0)],
                },
                TraceEvent {
                    ts_ns: 5_000,
                    dur_ns: 0,
                    value: 3.0,
                    thread: 1,
                    kind: EventKind::Counter,
                    name: "pool_idle".to_string(),
                    args: vec![],
                },
            ],
            threads: vec![ThreadInfo {
                tid: 1,
                name: "main".to_string(),
            }],
            dropped: 0,
        };
        let doc = json::parse(&to_chrome_json(&trace)).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // process_name + thread_name + 2 events
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0].get("name").unwrap().as_str(),
            Some("process_name")
        );
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("thread_name"));
        let span = &events[2];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2.5));
        assert!(doc.get("dpzSummary").is_some());
    }
}
