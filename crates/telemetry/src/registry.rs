//! The metrics registry: named, labeled, thread-safe instruments.
//!
//! Three instrument kinds cover everything the pipeline reports:
//!
//! * [`Counter`] — monotonically increasing `u64` (bytes in/out, blocks,
//!   outliers, compressions run),
//! * [`Gauge`] — last-written `f64` (selected `k`, achieved TVE, VIF),
//! * [`Histogram`] — fixed-bucket cumulative distribution with sum and
//!   count (per-stage and per-span latencies).
//!
//! Instruments are identified by a [`Key`] (metric name plus sorted label
//! pairs) and live behind `Arc`s, so handles can be cached and bumped from
//! any thread without holding the registry lock.

use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Default latency buckets in seconds (1 µs … 30 s, roughly exponential).
pub const LATENCY_BUCKETS_S: [f64; 10] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0];

/// `count` exponential bucket bounds: `start, start*factor, …`.
///
/// Panics if `start <= 0`, `factor <= 1`, or `count == 0` (the resulting
/// bounds would not be strictly increasing).
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && factor > 1.0 && count > 0,
        "exponential buckets need start > 0, factor > 1, count > 0"
    );
    // powi rather than running product: less drift, so decade bounds come
    // out exact (1e-6 * 10^3 == 1e-3).
    (0..count).map(|i| start * factor.powi(i as i32)).collect()
}

/// Identity of one instrument: metric name + sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Prometheus-style metric name (`dpz_bytes_in_total`, …).
    pub name: String,
    /// Label pairs, sorted by label name for canonical identity.
    pub labels: Vec<(String, String)>,
}

impl Key {
    /// Build a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }
}

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-value gauge (an `f64` stored as atomic bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram with cumulative-count Prometheus semantics.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing. An implicit
    /// `+Inf` bucket (the total count) always exists on top.
    bounds: Box<[f64]>,
    /// Per-bucket observation counts (NOT cumulative; cumulated on export).
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.into(),
            // One extra slot for the +Inf overflow bucket.
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: f64 addition over atomic bits.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A set of named instruments that can be snapshotted atomically enough for
/// reporting (individual instrument reads are atomic; the snapshot as a
/// whole is best-effort consistent, which is fine for telemetry).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

fn get_or_insert<T, F: FnOnce() -> T>(
    map: &RwLock<BTreeMap<Key, Arc<T>>>,
    key: Key,
    make: F,
) -> Arc<T> {
    if let Some(found) = map.read().expect("registry lock").get(&key) {
        return Arc::clone(found);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(key).or_insert_with(|| Arc::new(make())))
}

impl Registry {
    /// Fresh, empty registry (tests and scoped measurements).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Counter without labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_insert(&self.counters, Key::new(name, labels), Counter::default)
    }

    /// Gauge without labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_insert(&self.gauges, Key::new(name, labels), Gauge::default)
    }

    /// Histogram without labels. `bounds` applies only on first creation.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// Histogram with labels. `bounds` applies only on first creation.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        get_or_insert(&self.histograms, Key::new(name, labels), || {
            Histogram::new(bounds)
        })
    }

    /// Histogram with exponential bucket bounds (`start, start*factor, …`,
    /// `count` finite buckets). Bounds apply only on first creation.
    pub fn histogram_exponential(
        &self,
        name: &str,
        start: f64,
        factor: f64,
        count: usize,
    ) -> Arc<Histogram> {
        self.histogram_exponential_with(name, &[], start, factor, count)
    }

    /// Labeled variant of [`Registry::histogram_exponential`].
    pub fn histogram_exponential_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        start: f64,
        factor: f64,
        count: usize,
    ) -> Arc<Histogram> {
        get_or_insert(&self.histograms, Key::new(name, labels), || {
            Histogram::new(&exponential_buckets(start, factor, count))
        })
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Drop every instrument (start a fresh measurement window).
    pub fn reset(&self) {
        self.counters.write().expect("registry lock").clear();
        self.gauges.write().expect("registry lock").clear();
        self.histograms.write().expect("registry lock").clear();
    }
}

/// The process-wide registry every instrumented crate reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        r.counter("hits_total").add(3);
        r.counter("hits_total").inc();
        assert_eq!(r.counter("hits_total").get(), 4);
        // Different labels are different series.
        r.counter_with("hits_total", &[("codec", "sz")]).inc();
        assert_eq!(r.counter("hits_total").get(), 4);
        assert_eq!(r.counter_with("hits_total", &[("codec", "sz")]).get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        r.counter_with("x_total", &[("a", "1"), ("b", "2")]).inc();
        r.counter_with("x_total", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(
            r.counter_with("x_total", &[("a", "1"), ("b", "2")]).get(),
            2
        );
    }

    #[test]
    fn gauge_overwrites() {
        let r = Registry::new();
        r.gauge("k").set(12.0);
        r.gauge("k").set(7.5);
        assert_eq!(r.gauge("k").get(), 7.5);
    }

    #[test]
    fn histogram_buckets_boundaries() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1.0, 2.0, 4.0]);
        // A value exactly on a bound belongs to that bound's bucket
        // (Prometheus `le` semantics: bucket counts observations <= bound).
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histograms.values().next().unwrap();
        assert_eq!(hs.buckets, vec![2, 2, 2, 1]); // (..1], (1..2], (2..4], (4..)
        assert_eq!(hs.count, 7);
        assert!((hs.sum - 112.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn exponential_buckets_generate_geometric_bounds() {
        let bounds = exponential_buckets(1e-6, 10.0, 4);
        for (got, want) in bounds.iter().zip([1e-6, 1e-5, 1e-4, 1e-3]) {
            assert!((got / want - 1.0).abs() < 1e-12, "{got} != {want}");
        }
        let r = Registry::new();
        let h = r.histogram_exponential_with("lat_s", &[("stage", "pca")], 1e-6, 10.0, 8);
        h.observe(0.5);
        let snap = r.snapshot();
        let hs = snap.histogram("lat_s", &[("stage", "pca")]).unwrap();
        assert_eq!(hs.bounds.len(), 8);
        assert!((hs.bounds[7] - 10.0).abs() < 1e-9);
        assert_eq!(hs.count, 1);
    }

    #[test]
    #[should_panic(expected = "exponential buckets")]
    fn exponential_buckets_reject_shrinking_factor() {
        exponential_buckets(1.0, 0.5, 3);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.counter("c_total").inc();
        r.gauge("g").set(1.0);
        r.histogram("h", &LATENCY_BUCKETS_S).observe(0.1);
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
