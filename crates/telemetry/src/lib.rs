//! # dpz-telemetry
//!
//! Zero-dependency observability for the DPZ compression pipeline: span
//! tracing, a global metrics registry, and Prometheus/JSON exporters.
//!
//! ## Spans
//!
//! Wrap a region in a [`span!`] guard and its wall-clock duration lands in
//! the `dpz_span_seconds{span="<path>"}` histogram of the [global
//! registry](registry::global). Spans nest per thread into dotted paths:
//!
//! ```
//! let _compress = dpz_telemetry::span!("compress");
//! {
//!     let _pca = dpz_telemetry::span!("stage2.pca"); // path: compress.stage2.pca
//! }
//! ```
//!
//! Setting `DPZ_TRACE=1` (or calling [`set_trace`]`(true)`, which the CLI's
//! `--verbose` flag does) prints every span close to stderr.
//!
//! ## Metrics
//!
//! [`registry::global`] hands out named, labeled [`Counter`]s, [`Gauge`]s
//! and [`Histogram`]s that any thread can bump lock-free. A [`Snapshot`]
//! copies the whole registry at a point in time; [`Snapshot::since`] yields
//! the delta between two snapshots (how the bench harness attributes
//! activity to a single run).
//!
//! ## Event journal
//!
//! [`trace`] is a structured event journal behind the same spans: when
//! enabled ([`trace::start`]), every span close, instant marker and counter
//! sample lands in a per-thread lock-free ring buffer. [`trace::drain`]
//! collects the events and [`trace::to_chrome_json`] renders them as Chrome
//! trace-event JSON for Perfetto / `chrome://tracing`, with a p50/p99 and
//! MB/s digest embedded. When the journal is off, the cost is one relaxed
//! atomic load per event site.
//!
//! ## Export
//!
//! [`to_prometheus`] renders a snapshot in the Prometheus text exposition
//! format; [`to_json`] / [`from_json`] round-trip it through JSON. The
//! [`json`] module exposes the underlying zero-dependency JSON parser.

pub mod export;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use export::{from_json, to_json, to_prometheus, JsonError};
pub use registry::{
    exponential_buckets, global, Counter, Gauge, Histogram, Key, Registry, LATENCY_BUCKETS_S,
};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::{set_trace, trace_enabled, Span, TraceGuard};

/// Open a timed [`Span`]; bind it to keep the region alive:
///
/// ```
/// let _span = dpz_telemetry::span!("stage3.quantize");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
}
