//! Lightweight span tracing: RAII guards that time a region of code into
//! the global registry and, when tracing is enabled, print close events to
//! stderr.
//!
//! Spans nest per thread: a span opened while another is live becomes its
//! child, and its metric label is the dotted path from the root
//! (`compress.stage2.pca`). Durations land in the
//! `dpz_span_seconds{span="<path>"}` histogram of the global registry.
//!
//! Tracing to stderr is off by default; it turns on when the `DPZ_TRACE`
//! environment variable is set to anything but `0`/empty, or at runtime via
//! [`set_trace`] (the CLI's `--verbose` flag).

use crate::registry::{global, LATENCY_BUCKETS_S};
use std::cell::RefCell;
use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Runtime override: -1 = unset (fall back to env), 0 = off, 1 = on.
static TRACE_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

fn env_trace() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("DPZ_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Force stderr tracing on or off, overriding `DPZ_TRACE`.
pub fn set_trace(on: bool) {
    TRACE_OVERRIDE.store(i8::from(on), Ordering::Relaxed);
}

/// RAII scoped form of [`set_trace`]: flips the override and restores the
/// previous state (including "unset, fall back to env") on drop, so tests
/// and CLI runs cannot leak tracing into unrelated code.
#[derive(Debug)]
pub struct TraceGuard {
    prev: i8,
}

impl TraceGuard {
    /// Set stderr tracing for the guard's lifetime.
    pub fn set(on: bool) -> TraceGuard {
        TraceGuard {
            prev: TRACE_OVERRIDE.swap(i8::from(on), Ordering::Relaxed),
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Whether span close events are printed to stderr.
pub fn trace_enabled() -> bool {
    match TRACE_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => env_trace(),
    }
}

thread_local! {
    /// Dotted paths of the spans currently open on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed region. Created by [`span`] (or the `span!`
/// macro); records its duration when dropped.
#[derive(Debug)]
pub struct Span {
    path: String,
    depth: usize,
    start: Instant,
    args: [Option<(&'static str, f64)>; crate::trace::MAX_ARGS],
}

/// Open a span named `name`, nested under the thread's innermost live span.
pub fn span(name: &str) -> Span {
    let (path, depth) = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}.{name}"),
            None => name.to_string(),
        };
        let depth = stack.len();
        stack.push(path.clone());
        (path, depth)
    });
    Span {
        path,
        depth,
        start: Instant::now(),
        args: [None; crate::trace::MAX_ARGS],
    }
}

impl Span {
    /// Dotted path from the root span (`compress.stage2.pca`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Nesting depth (0 for a root span).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seconds elapsed since the span opened.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Time elapsed since the span opened, as a [`std::time::Duration`]
    /// (for callers that keep duration-typed views like `StageTimings`).
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Attach a numeric annotation (buffer size, chunk index, …) carried on
    /// the span's journal event. At most [`crate::trace::MAX_ARGS`] stick;
    /// re-annotating an existing key overwrites it.
    pub fn annotate(&mut self, key: &'static str, value: f64) {
        for slot in &mut self.args {
            match slot {
                Some((k, v)) if *k == key => {
                    *v = value;
                    return;
                }
                None => {
                    *slot = Some((key, value));
                    return;
                }
                Some(_) => {}
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop innermost-first; truncate (rather than
            // pop) keeps the stack sane if one escapes its nesting order.
            if let Some(idx) = stack.iter().rposition(|p| *p == self.path) {
                stack.truncate(idx);
            }
        });
        global()
            .histogram_with(
                "dpz_span_seconds",
                &[("span", &self.path)],
                &LATENCY_BUCKETS_S,
            )
            .observe(secs);
        if crate::trace::journal_enabled() {
            let args: Vec<(&str, f64)> = self.args.iter().flatten().copied().collect();
            crate::trace::complete(&self.path, self.start.elapsed().as_nanos() as u64, &args);
        }
        if trace_enabled() {
            let indent = "  ".repeat(self.depth);
            eprintln!("[dpz-trace] {indent}{path} {secs:.6}s", path = self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_dotted_paths() {
        let outer = span("compress");
        assert_eq!(outer.path(), "compress");
        assert_eq!(outer.depth(), 0);
        {
            let inner = span("stage2");
            assert_eq!(inner.path(), "compress.stage2");
            assert_eq!(inner.depth(), 1);
            let leaf = span("pca");
            assert_eq!(leaf.path(), "compress.stage2.pca");
            assert_eq!(leaf.depth(), 2);
        }
        // Siblings opened after a child closed still nest under `outer`.
        let next = span("stage3");
        assert_eq!(next.path(), "compress.stage3");
        drop(next);
        drop(outer);

        let snap = global().snapshot();
        for path in [
            "compress",
            "compress.stage2",
            "compress.stage2.pca",
            "compress.stage3",
        ] {
            let h = snap
                .histogram("dpz_span_seconds", &[("span", path)])
                .unwrap_or_else(|| panic!("missing span series {path}"));
            assert!(h.count >= 1, "span {path} never recorded");
        }
    }

    #[test]
    fn set_trace_overrides_env() {
        set_trace(true);
        assert!(trace_enabled());
        set_trace(false);
        assert!(!trace_enabled());
        // The scoped guard restores whatever was set before it, including
        // the "unset, fall back to env" state.
        {
            let _on = TraceGuard::set(true);
            assert!(trace_enabled());
            {
                let _off = TraceGuard::set(false);
                assert!(!trace_enabled());
            }
            assert!(trace_enabled());
        }
        assert!(!trace_enabled());
        TRACE_OVERRIDE.store(-1, Ordering::Relaxed);
    }

    #[test]
    fn annotations_cap_at_max_args_and_overwrite() {
        let mut s = span("annotated");
        s.annotate("bytes", 10.0);
        s.annotate("chunk", 2.0);
        s.annotate("extra", 99.0); // no slot left; silently dropped
        s.annotate("bytes", 20.0); // overwrite
        assert_eq!(s.args[0], Some(("bytes", 20.0)));
        assert_eq!(s.args[1], Some(("chunk", 2.0)));
    }
}
