//! Exporters: Prometheus text exposition and JSON (with a parser for the
//! JSON form, so snapshots round-trip through files).
//!
//! Both exporters are hand-rolled over [`Snapshot`] — no serialization
//! dependencies. The JSON grammar emitted here is plain standard JSON,
//! decoded back through the generic [`crate::json`] parser.

use crate::json::{self, JsonValue};
use crate::registry::Key;
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub use crate::json::JsonError;

/// Render `v` the way both exposition formats want it: shortest form that
/// round-trips (Rust's default `Display` for `f64`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `{a="1",b="2"}` (empty string when there are no labels). `extra` lets the
/// histogram writer append its `le` pair.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# TYPE` headers, one sample per line, histograms expanded into
/// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();

    let mut last_type_for = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if last_type_for != name {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type_for = name.to_string();
        }
    };

    for (key, value) in &snap.counters {
        type_line(&mut out, &key.name, "counter");
        let _ = writeln!(
            out,
            "{}{} {value}",
            key.name,
            label_block(&key.labels, None)
        );
    }
    for (key, value) in &snap.gauges {
        type_line(&mut out, &key.name, "gauge");
        let _ = writeln!(
            out,
            "{}{} {}",
            key.name,
            label_block(&key.labels, None),
            fmt_f64(*value)
        );
    }
    for (key, hist) in &snap.histograms {
        type_line(&mut out, &key.name, "histogram");
        let cumulative = hist.cumulative();
        for (bound, cum) in hist.bounds.iter().zip(&cumulative) {
            let le = fmt_f64(*bound);
            let _ = writeln!(
                out,
                "{}_bucket{} {cum}",
                key.name,
                label_block(&key.labels, Some(("le", &le)))
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            key.name,
            label_block(&key.labels, Some(("le", "+Inf"))),
            hist.count
        );
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            key.name,
            label_block(&key.labels, None),
            fmt_f64(hist.sum)
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            key.name,
            label_block(&key.labels, None),
            hist.count
        );
    }
    out
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

/// JSON numbers cannot express NaN/Inf; encode those as `null` (decoded back
/// to NaN — gauges are the only instrument that can hold them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn json_u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn json_f64_array(values: &[f64]) -> String {
    let items: Vec<String> = values.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", items.join(","))
}

/// Render a snapshot as a JSON document:
///
/// ```json
/// {
///   "counters":   [{"name": "...", "labels": {...}, "value": 0}],
///   "gauges":     [{"name": "...", "labels": {...}, "value": 0.0}],
///   "histograms": [{"name": "...", "labels": {...}, "bounds": [...],
///                   "buckets": [...], "count": 0, "sum": 0.0}]
/// }
/// ```
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": [");
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| {
            format!(
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {v}}}",
                json::escape(&k.name),
                json_labels(&k.labels)
            )
        })
        .collect();
    out.push_str(&counters.join(","));
    out.push_str("\n  ],\n  \"gauges\": [");
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(k, v)| {
            format!(
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                json::escape(&k.name),
                json_labels(&k.labels),
                json_f64(*v)
            )
        })
        .collect();
    out.push_str(&gauges.join(","));
    out.push_str("\n  ],\n  \"histograms\": [");
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "\n    {{\"name\": \"{}\", \"labels\": {}, \"bounds\": {}, \
                 \"buckets\": {}, \"count\": {}, \"sum\": {}}}",
                json::escape(&k.name),
                json_labels(&k.labels),
                json_f64_array(&h.bounds),
                json_u64_array(&h.buckets),
                h.count,
                json_f64(h.sum)
            )
        })
        .collect();
    out.push_str(&hists.join(","));
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// JSON tree -> Snapshot
// ---------------------------------------------------------------------------

fn want_object<'v>(
    v: &'v JsonValue,
    what: &str,
) -> Result<&'v BTreeMap<String, JsonValue>, JsonError> {
    v.as_object()
        .ok_or_else(|| JsonError::shape(format!("{what}: expected an object")))
}

fn want_array<'v>(v: &'v JsonValue, what: &str) -> Result<&'v [JsonValue], JsonError> {
    v.as_array()
        .ok_or_else(|| JsonError::shape(format!("{what}: expected an array")))
}

fn want_f64(v: &JsonValue, what: &str) -> Result<f64, JsonError> {
    match v {
        JsonValue::Number(n) => Ok(*n),
        JsonValue::Null => Ok(f64::NAN), // non-finite values export as null
        _ => Err(JsonError::shape(format!("{what}: expected a number"))),
    }
}

fn want_u64(v: &JsonValue, what: &str) -> Result<u64, JsonError> {
    let n = want_f64(v, what)?;
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
        Ok(n as u64)
    } else {
        Err(JsonError::shape(format!(
            "{what}: expected a non-negative integer"
        )))
    }
}

fn series_key(entry: &BTreeMap<String, JsonValue>, what: &str) -> Result<Key, JsonError> {
    let name = match entry.get("name") {
        Some(JsonValue::String(s)) => s.clone(),
        _ => {
            return Err(JsonError::shape(format!("{what}: missing \"name\"")));
        }
    };
    let mut labels = Vec::new();
    if let Some(raw) = entry.get("labels") {
        for (k, v) in want_object(raw, what)? {
            match v {
                JsonValue::String(s) => labels.push((k.clone(), s.clone())),
                _ => {
                    return Err(JsonError::shape(format!(
                        "{what}: label values must be strings"
                    )));
                }
            }
        }
    }
    labels.sort();
    Ok(Key { name, labels })
}

/// Parse a document produced by [`to_json`] back into a [`Snapshot`].
pub fn from_json(input: &str) -> Result<Snapshot, JsonError> {
    let root = json::parse(input)?;
    let root = want_object(&root, "document")?;
    let mut snap = Snapshot::default();

    if let Some(raw) = root.get("counters") {
        for item in want_array(raw, "counters")? {
            let entry = want_object(item, "counter entry")?;
            let key = series_key(entry, "counter entry")?;
            let value = want_u64(
                entry.get("value").unwrap_or(&JsonValue::Null),
                "counter value",
            )?;
            snap.counters.insert(key, value);
        }
    }
    if let Some(raw) = root.get("gauges") {
        for item in want_array(raw, "gauges")? {
            let entry = want_object(item, "gauge entry")?;
            let key = series_key(entry, "gauge entry")?;
            let value = want_f64(
                entry.get("value").unwrap_or(&JsonValue::Null),
                "gauge value",
            )?;
            snap.gauges.insert(key, value);
        }
    }
    if let Some(raw) = root.get("histograms") {
        for item in want_array(raw, "histograms")? {
            let entry = want_object(item, "histogram entry")?;
            let key = series_key(entry, "histogram entry")?;
            let bounds = want_array(
                entry.get("bounds").unwrap_or(&JsonValue::Null),
                "histogram bounds",
            )?
            .iter()
            .map(|v| want_f64(v, "histogram bound"))
            .collect::<Result<Vec<f64>, JsonError>>()?;
            let buckets = want_array(
                entry.get("buckets").unwrap_or(&JsonValue::Null),
                "histogram buckets",
            )?
            .iter()
            .map(|v| want_u64(v, "histogram bucket"))
            .collect::<Result<Vec<u64>, JsonError>>()?;
            if buckets.len() != bounds.len() + 1 {
                return Err(JsonError::shape(
                    "histogram entry: buckets must have bounds+1 slots",
                ));
            }
            let count = want_u64(
                entry.get("count").unwrap_or(&JsonValue::Null),
                "histogram count",
            )?;
            let sum = want_f64(
                entry.get("sum").unwrap_or(&JsonValue::Null),
                "histogram sum",
            )?;
            snap.histograms.insert(
                key,
                HistogramSnapshot {
                    bounds,
                    buckets,
                    count,
                    sum,
                },
            );
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, LATENCY_BUCKETS_S};

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter_with(
            "dpz_bytes_in_total",
            &[("codec", "dpz"), ("op", "compress")],
        )
        .add(4096);
        r.counter_with(
            "dpz_bytes_out_total",
            &[("codec", "dpz"), ("op", "compress")],
        )
        .add(512);
        r.gauge("dpz_k_selected").set(7.0);
        r.gauge("dpz_tve_achieved").set(0.999);
        let h = r.histogram_with(
            "dpz_stage_seconds",
            &[("stage", "pca")],
            &[0.001, 0.01, 0.1, 1.0],
        );
        h.observe(0.004);
        h.observe(0.03);
        h.observe(0.03);
        r.snapshot()
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE dpz_bytes_in_total counter"));
        assert!(text.contains("dpz_bytes_in_total{codec=\"dpz\",op=\"compress\"} 4096"));
        assert!(text.contains("# TYPE dpz_k_selected gauge"));
        assert!(text.contains("dpz_k_selected 7"));
        assert!(text.contains("# TYPE dpz_stage_seconds histogram"));
        // Cumulative le buckets: 0 <= 0.001, 1 <= 0.01, 3 <= 0.1, 3 <= 1, 3 total.
        assert!(text.contains("dpz_stage_seconds_bucket{stage=\"pca\",le=\"0.001\"} 0"));
        assert!(text.contains("dpz_stage_seconds_bucket{stage=\"pca\",le=\"0.01\"} 1"));
        assert!(text.contains("dpz_stage_seconds_bucket{stage=\"pca\",le=\"0.1\"} 3"));
        assert!(text.contains("dpz_stage_seconds_bucket{stage=\"pca\",le=\"+Inf\"} 3"));
        assert!(text.contains("dpz_stage_seconds_count{stage=\"pca\"} 3"));
    }

    #[test]
    fn json_round_trips() {
        let snap = sample_snapshot();
        let parsed = from_json(&to_json(&snap)).expect("round-trip parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn json_round_trips_latency_buckets() {
        let r = Registry::new();
        let h = r.histogram("dpz_span_seconds", &LATENCY_BUCKETS_S);
        for v in [1e-7, 3e-4, 0.2, 40.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(from_json("{").is_err());
        assert!(from_json("[]").is_err());
        assert!(from_json("{\"counters\": [{\"labels\": {}}]}").is_err());
        assert!(from_json("{} trailing").is_err());
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c_total", &[("path", "a\"b\\c")]).inc();
        let snap = r.snapshot();
        assert!(to_prometheus(&snap).contains("c_total{path=\"a\\\"b\\\\c\"} 1"));
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }
}
