//! Point-in-time copies of the registry, plus delta arithmetic.
//!
//! A [`Snapshot`] is a plain-data view over every instrument at one moment.
//! Snapshots are what the exporters consume and what the bench harness
//! stores per run; [`Snapshot::since`] turns two cumulative snapshots into
//! the activity between them.

use crate::registry::Key;
use std::collections::BTreeMap;

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one slot per bound plus a trailing `+Inf` slot.
    /// These are *non*-cumulative; use [`cumulative`](Self::cumulative) for
    /// the Prometheus `le` form.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Running totals over the buckets — the cumulative counts Prometheus
    /// expects against each `le` bound (the final entry equals `count`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets
            .iter()
            .map(|&b| {
                total += b;
                total
            })
            .collect()
    }

    /// Observations recorded between `earlier` and `self`.
    ///
    /// Both snapshots must describe the same bucket layout; saturating
    /// subtraction keeps a reset-in-between from underflowing.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        debug_assert_eq!(self.bounds, earlier.bounds, "mismatched histogram layouts");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(&now, &then)| now.saturating_sub(then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
        }
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time copy of a whole [`Registry`](crate::registry::Registry).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by key.
    pub counters: BTreeMap<Key, u64>,
    /// Gauge values by key.
    pub gauges: BTreeMap<Key, f64>,
    /// Histogram states by key.
    pub histograms: BTreeMap<Key, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, or `None` if the series does not exist.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&Key::new(name, labels)).copied()
    }

    /// Gauge value, or `None` if the series does not exist.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&Key::new(name, labels)).copied()
    }

    /// Histogram state, or `None` if the series does not exist.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&Key::new(name, labels))
    }

    /// True when no instrument has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Activity between `earlier` and `self`.
    ///
    /// Counters and histograms are subtracted (series absent from `earlier`
    /// count from zero; series absent from `self` are dropped). Gauges are
    /// last-value instruments, so the newer value is kept as-is.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &now)| {
                    let then = earlier.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), now.saturating_sub(then))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, now)| {
                    let delta = match earlier.histograms.get(k) {
                        Some(then) if then.bounds == now.bounds => now.since(then),
                        _ => now.clone(),
                    };
                    (k.clone(), delta)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn cumulative_runs_to_count() {
        let h = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            buckets: vec![3, 1, 2],
            count: 6,
            sum: 9.0,
        };
        assert_eq!(h.cumulative(), vec![3, 4, 6]);
        assert_eq!(*h.cumulative().last().unwrap(), h.count);
    }

    #[test]
    fn since_subtracts_counters_and_histograms_keeps_gauges() {
        let r = Registry::new();
        r.counter("c_total").add(5);
        r.gauge("g").set(1.0);
        r.histogram("h", &[1.0]).observe(0.5);
        let before = r.snapshot();

        r.counter("c_total").add(2);
        r.counter("new_total").inc();
        r.gauge("g").set(42.0);
        r.histogram("h", &[1.0]).observe(3.0);
        let after = r.snapshot();

        let delta = after.since(&before);
        assert_eq!(delta.counter("c_total", &[]), Some(2));
        assert_eq!(delta.counter("new_total", &[]), Some(1));
        assert_eq!(delta.gauge("g", &[]), Some(42.0));
        let h = delta.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets, vec![0, 1]);
        assert!((h.sum - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_handles_empty() {
        let h = HistogramSnapshot {
            bounds: vec![],
            buckets: vec![0],
            count: 0,
            sum: 0.0,
        };
        assert_eq!(h.mean(), 0.0);
    }
}
