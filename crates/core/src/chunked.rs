//! Chunked parallel compression — the scalability extension the paper lists
//! as future work ("we plan to expand the DPZ algorithm to exploit
//! parallelism for better scalability").
//!
//! The array is split into slabs along its slowest axis; each slab is an
//! independent DPZ stream compressed on a rayon worker. Benefits:
//!
//! * near-linear multi-core compression scaling (each slab runs the full
//!   DCT→PCA→quantize pipeline independently),
//! * slab-granular **random access**: [`decompress_chunk`] and
//!   [`decompress_region`] decode only the slabs they touch,
//! * bounded memory: the `M×M` covariance is per-slab.
//!
//! The cost is a per-slab model (basis + means), so very small slabs trade
//! ratio for parallelism; 4–16 slabs is a good range at the default scales.
//!
//! ## Container versions
//!
//! Legacy (v1/v2) layout — directory *before* the payload:
//! `magic "DPZC" | version u8 | ndims u8 | dims u64×ndims
//! | chunk count u64 | chunk byte lengths u64×count
//! | chunk crc32 u32×count (version 2) | streams…`.
//!
//! Version 4 (the current writer, [`VERSION_SEEKABLE`]) moves the directory
//! into an **index footer** so a seekable reader can locate, size, and
//! CRC-verify exactly the chunks a query touches without walking the
//! payload:
//!
//! ```text
//! magic "DPZC" | 4 u8 | ndims u8 | dims u64×ndims | flags u8
//! | chunk streams…
//! | footer: count u64
//!           per chunk: offset u64 | len u64 | rows u64 | values u64 | crc32 u32
//!           (flags bit 0) per chunk: k u64 | model_end u64
//!                                    per component: end u64 | energy f64
//! | tail: footer_len u64 | footer_crc32 u32 | magic "DPZF"
//! ```
//!
//! Version 3 is deliberately **skipped**: in the DPZ1 family the version-3
//! byte means "per-section tANS backend flags", and keeping that number
//! unambiguous across both formats avoids a false-versioning trap for
//! tooling that sniffs only `bytes[4]`.
//!
//! Flags bit 0 ([`FLAG_PROGRESSIVE`]) marks a **progressive** container:
//! each chunk is a `DPZP` stream (see
//! [`crate::container::serialize_progressive`]) whose PCA components are
//! stored in descending captured-energy order, and the footer records each
//! component's byte range, so [`decompress_progressive`] can reconstruct
//! from any prefix budget and refine with later bytes. A prefix cannot be
//! guarded by the whole-chunk CRC, so progressive sections each carry their
//! own CRC-32 trailer instead.
//!
//! Legacy v1/v2 containers still decode through every full-stream entry
//! point; [`decompress_chunked_with_info`] reports which form was seen.

use crate::config::DpzConfig;
use crate::container::{self, checked_product, ContainerInfo, DpzError, ProgressiveLayout};
use crate::decompose::extract_region;
use crate::pipeline::{decompress, decompress_with_info, Compressed, PipelinePlan};
use crate::stage::BufferPool;
use crate::target::{self, QualityTarget, RatioOracle};
use dpz_deflate::crc32;
use dpz_linalg::SubspaceSeed;
use dpz_telemetry::span;
use rayon::prelude::*;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Range;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DPZC";
/// Tail sentinel closing a seekable container.
const TAIL_MAGIC: &[u8; 4] = b"DPZF";
/// Tail size: footer_len u64 + footer_crc32 u32 + tail magic.
const TAIL_LEN: usize = 16;
/// Current writer version (index footer + tail).
const VERSION_SEEKABLE: u8 = 4;
/// Newest legacy version (per-chunk CRC-32 column before the payload).
const VERSION_CRC: u8 = 2;
/// Oldest version the decoder still accepts (pre-checksum layout).
const MIN_VERSION: u8 = 1;

/// Projection wave width for the pipelined chunk driver. Deliberately a
/// constant rather than `rayon::current_num_threads()`: the cross-chunk
/// warm-start chain follows wave boundaries, so a thread-count-dependent
/// width would make the compressed bytes depend on the host's core count.
const PROJECT_WAVE: usize = 8;
/// Container flag: chunks are progressive `DPZP` streams with per-component
/// byte ranges in the footer.
pub const FLAG_PROGRESSIVE: u8 = 1;

/// Result of a chunked compression.
#[derive(Debug, Clone)]
pub struct ChunkedCompressed {
    /// The multi-chunk container.
    pub bytes: Vec<u8>,
    /// Per-chunk stats from the inner pipeline (empty for progressive
    /// containers, whose entropy stage bypasses the stats-producing coder).
    pub chunk_stats: Vec<crate::pipeline::CompressionStats>,
    /// End-to-end ratio (original bytes / container bytes).
    pub cr_total: f64,
}

/// Slab geometry along the slowest axis: `(rows_per_slab, values_per_row)`.
fn slab_extents(dims: &[usize], chunks: usize) -> (usize, usize) {
    let slow = dims[0];
    let rest: usize = dims[1..].iter().product::<usize>().max(1);
    let rows_per_slab = slow.div_ceil(chunks.clamp(1, slow));
    (rows_per_slab, rest)
}

fn check_chunk_input(data: &[f32], dims: &[usize]) -> Result<(), DpzError> {
    if dims.is_empty() || checked_product(dims, "dims overflow").ok() != Some(data.len()) {
        return Err(DpzError::BadInput("dims do not match data length"));
    }
    if data.len() < 4 {
        return Err(DpzError::BadInput("too small to chunk"));
    }
    Ok(())
}

/// Compress `data` as `chunks` independent slabs (in parallel).
///
/// Each slab must still be large enough to decompose (≥ 2 values); `chunks`
/// is clamped accordingly. The output is a seekable v4 container.
///
/// Data-dependent quality targets ([`QualityTarget::Ratio`] /
/// [`QualityTarget::Psnr`]) are resolved **once, against the whole input**,
/// before any slab is planned — every chunk then shares the same resolved
/// bound, and the control loop confirms against the aggregate container.
pub fn compress_chunked(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    chunks: usize,
) -> Result<ChunkedCompressed, DpzError> {
    check_chunk_input(data, dims)?;
    cfg.target.validate()?;
    if cfg.target.needs_resolution() {
        return chunked_with_target(data, cfg, &|resolved| {
            compress_chunked_resolved(data, dims, resolved, chunks)
        });
    }
    compress_chunked_resolved(data, dims, cfg, chunks)
}

/// Shared control loop for data-dependent targets over a chunked/progressive
/// compressor. `run` executes one full compression at a resolved config; the
/// loop confirms against the aggregate container ratio (fixed-ratio, with one
/// calibrated corrective pass) or the full-roundtrip PSNR (fixed-PSNR, with
/// bounded tighten-and-retry).
fn chunked_with_target(
    data: &[f32],
    cfg: &DpzConfig,
    run: &dyn Fn(&DpzConfig) -> Result<ChunkedCompressed, DpzError>,
) -> Result<ChunkedCompressed, DpzError> {
    let reg = dpz_telemetry::global();
    match cfg.target {
        QualityTarget::Ratio { target: tcr, tol } => {
            let oracle = RatioOracle::build(data, cfg)?;
            let (resolved, res) = target::resolve_ratio(cfg, &oracle, tcr, tol, 1.0)?;
            let out = run(&resolved)?;
            reg.counter_with("dpz_target_confirm_total", &[("mode", "ratio")])
                .inc();
            if target::ratio_within(out.cr_total, tcr, tol) {
                return Ok(out);
            }
            let predicted = res.predicted_cr.unwrap_or(out.cr_total).max(1e-9);
            let calibration = out.cr_total / predicted;
            let (resolved2, _) = target::resolve_ratio(cfg, &oracle, tcr, tol, calibration)?;
            let out2 = run(&resolved2)?;
            reg.counter_with("dpz_target_confirm_total", &[("mode", "ratio")])
                .inc();
            let dist = |cr: f64| (cr.max(1e-12) / tcr).ln().abs();
            let best = if dist(out2.cr_total) <= dist(out.cr_total) {
                out2
            } else {
                out
            };
            if target::ratio_within(best.cr_total, tcr, tol) {
                Ok(best)
            } else {
                Err(DpzError::TargetUnreachable {
                    requested: tcr,
                    achievable: best.cr_total,
                })
            }
        }
        QualityTarget::Psnr(db) => {
            let (mut resolved, res) = target::resolve_psnr(cfg, db);
            let mut p = res.p;
            let mut best: Option<(ChunkedCompressed, f64)> = None;
            for attempt in 0..MAX_PSNR_ATTEMPTS {
                let out = run(&resolved)?;
                let (recon, _) = decompress_chunked(&out.bytes)?;
                let measured = crate::pipeline::psnr(data, &recon);
                if measured >= db {
                    return Ok(out);
                }
                if best.as_ref().is_none_or(|(_, m)| measured > *m) {
                    best = Some((out, measured));
                }
                if attempt + 1 < MAX_PSNR_ATTEMPTS {
                    reg.counter("dpz_target_psnr_retries_total").inc();
                    p *= 0.25;
                    resolved = resolved.with_resolved_bound(p);
                    resolved.selection = target::tighten_selection_once(resolved.selection);
                }
            }
            let (out, measured) = best.expect("at least one attempt ran");
            if measured >= db - crate::pipeline::PSNR_SLACK_DB {
                Ok(out)
            } else {
                Err(DpzError::TargetUnreachable {
                    requested: db,
                    achievable: measured,
                })
            }
        }
        _ => run(cfg),
    }
}

/// Bounded retries of the chunked post-hoc PSNR validation loop.
const MAX_PSNR_ATTEMPTS: u32 = 3;

fn compress_chunked_resolved(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    chunks: usize,
) -> Result<ChunkedCompressed, DpzError> {
    let _root = span!("compress_chunked");
    let (rows_per_slab, rest) = slab_extents(dims, chunks);
    let slab_values = rows_per_slab * rest;

    // The chunked driver is the plain pipeline's stage graph executed once
    // per slab: at most two distinct slab lengths exist (full slabs and a
    // ragged tail), so two shared plans cover every chunk, and one shared
    // pool recycles the block-matrix scratch across rayon workers.
    let pool = Arc::new(BufferPool::new());
    let full_plan = PipelinePlan::with_pool(slab_values, cfg, Arc::clone(&pool))?;
    let tail_len = data.len() % slab_values;
    let tail_plan = match tail_len {
        0 => None,
        l => Some(PipelinePlan::with_pool(l, cfg, Arc::clone(&pool))?),
    };

    // Two-phase pipelined execution: each slab's numeric stages
    // (DCT → PCA → quantize, via `PipelinePlan::project_warm`) and its
    // entropy coding (`PipelinePlan::encode`) are separate tasks. Slabs are
    // taken in fixed-width waves; `rayon::join` runs wave `w`'s entropy
    // coding concurrently with wave `w+1`'s numeric stages, so the DEFLATE
    // or tANS work of finished slabs overlaps the transform math of later
    // ones instead of serializing behind it. At most two waves of numeric
    // outcomes are ever alive — the bounded in-flight queue that keeps
    // memory proportional to the wave width, not the chunk count.
    //
    // Cross-chunk basis warm-start rides the same wave structure: the
    // converged PCA sketch basis of wave `w`'s last full-size slab seeds
    // every fit in wave `w+1`. The fitter's TVE gate rejects a seed whose
    // subspace no longer explains the data (dissimilar consecutive chunks
    // fall back to a cold randomized fit), so quality never depends on the
    // handoff — only the iteration count does. The wave width is a fixed
    // constant, NOT the rayon pool width: the warm-start chain (and thus
    // every artifact byte) must be identical no matter how many threads the
    // host has. Within a wave each slab sees the same seed, so per-chunk
    // output is also independent of intra-wave scheduling. The container is
    // therefore deterministic for a given input and config, but — unlike
    // the pre-warm-start driver — chunk streams are no longer byte-equal to
    // compressing each slab in isolation (the seed changes which basis the
    // sketch converges to; the TVE certificate is unchanged).
    let project_one = |(index, chunk): (usize, &[f32]), warm: Option<&SubspaceSeed>| {
        let mut chunk_span = dpz_telemetry::span::span("chunk");
        chunk_span.annotate("chunk", index as f64);
        chunk_span.annotate("bytes", (chunk.len() * 4) as f64);
        let rows = chunk.len() / rest;
        let mut slab_dims = dims.to_vec();
        slab_dims[0] = rows;
        if chunk.len() == slab_values {
            full_plan.project_warm(chunk, &slab_dims, warm)
        } else {
            // The ragged tail has a different block shape, so a full-slab
            // basis can never seed it; fit cold and pass nothing on.
            let plan = tail_plan.as_ref().expect("ragged tail was planned");
            plan.project(chunk, &slab_dims).map(|o| (o, None))
        }
    };
    let encode_wave = |outcomes: Vec<crate::pipeline::NumericOutcome>| -> Vec<Compressed> {
        outcomes
            .into_par_iter()
            .map(|o| full_plan.encode(o))
            .collect()
    };

    let slabs: Vec<(usize, &[f32])> = data.chunks(slab_values).enumerate().collect();
    let mut streams = Vec::with_capacity(slabs.len());
    let mut chunk_stats = Vec::with_capacity(slabs.len());
    let mut pending: Option<Vec<crate::pipeline::NumericOutcome>> = None;
    let mut warm: Option<SubspaceSeed> = None;
    for wave_slabs in slabs.chunks(PROJECT_WAVE) {
        let seed = warm.as_ref();
        let (encoded, projected) = rayon::join(
            || pending.take().map(&encode_wave),
            || {
                wave_slabs
                    .par_iter()
                    .map(|&s| project_one(s, seed))
                    .collect::<Vec<Result<_, DpzError>>>()
            },
        );
        for c in encoded.into_iter().flatten() {
            streams.push(c.bytes);
            chunk_stats.push(c.stats);
        }
        let mut wave_outcomes = Vec::with_capacity(projected.len());
        let mut wave_basis: Option<SubspaceSeed> = None;
        for r in projected {
            let (outcome, basis) = r?;
            // Last full-size slab's converged basis seeds the next wave; a
            // wave that produced none (dense routing) keeps the prior seed.
            if basis.is_some() {
                wave_basis = basis;
            }
            wave_outcomes.push(outcome);
        }
        if wave_basis.is_some() {
            warm = wave_basis;
        }
        pending = Some(wave_outcomes);
    }
    for c in pending.take().map(&encode_wave).into_iter().flatten() {
        streams.push(c.bytes);
        chunk_stats.push(c.stats);
    }

    let rows: Vec<usize> = slabs.iter().map(|(_, c)| c.len() / rest).collect();
    let out = assemble_seekable(dims, &streams, &rows, rest, None);
    let cr_total = (data.len() * 4) as f64 / out.len() as f64;
    dpz_telemetry::global()
        .counter("dpz_chunks_total")
        .add(streams.len() as u64);
    Ok(ChunkedCompressed {
        bytes: out,
        chunk_stats,
        cr_total,
    })
}

/// Compress `data` as a **progressive** seekable container: every slab is a
/// `DPZP` stream whose components are stored by descending captured energy,
/// with per-component byte ranges in the footer. Decode the whole thing
/// with [`decompress_chunked`], or a prefix with [`decompress_progressive`].
pub fn compress_progressive(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    chunks: usize,
) -> Result<ChunkedCompressed, DpzError> {
    check_chunk_input(data, dims)?;
    cfg.target.validate()?;
    if cfg.target.needs_resolution() {
        return chunked_with_target(data, cfg, &|resolved| {
            compress_progressive_resolved(data, dims, resolved, chunks)
        });
    }
    compress_progressive_resolved(data, dims, cfg, chunks)
}

fn compress_progressive_resolved(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    chunks: usize,
) -> Result<ChunkedCompressed, DpzError> {
    let _root = span!("compress_progressive");
    let (rows_per_slab, rest) = slab_extents(dims, chunks);
    let slab_values = rows_per_slab * rest;
    let pool = Arc::new(BufferPool::new());
    let full_plan = PipelinePlan::with_pool(slab_values, cfg, Arc::clone(&pool))?;
    let tail_len = data.len() % slab_values;
    let tail_plan = match tail_len {
        0 => None,
        l => Some(PipelinePlan::with_pool(l, cfg, Arc::clone(&pool))?),
    };

    let slabs: Vec<&[f32]> = data.chunks(slab_values).collect();
    let results: Vec<Result<(Vec<u8>, ProgressiveLayout), DpzError>> = slabs
        .par_iter()
        .map(|chunk| {
            let rows = chunk.len() / rest;
            let mut slab_dims = dims.to_vec();
            slab_dims[0] = rows;
            let plan = if chunk.len() == slab_values {
                &full_plan
            } else {
                tail_plan.as_ref().expect("ragged tail was planned")
            };
            let outcome = plan.project(chunk, &slab_dims)?;
            Ok(container::serialize_progressive(&outcome.into_payload()))
        })
        .collect();
    let mut streams = Vec::with_capacity(slabs.len());
    let mut layouts = Vec::with_capacity(slabs.len());
    for r in results {
        let (bytes, layout) = r?;
        streams.push(bytes);
        layouts.push(layout);
    }
    let rows: Vec<usize> = slabs.iter().map(|c| c.len() / rest).collect();
    let out = assemble_seekable(dims, &streams, &rows, rest, Some(&layouts));
    let cr_total = (data.len() * 4) as f64 / out.len() as f64;
    dpz_telemetry::global()
        .counter("dpz_chunks_total")
        .add(streams.len() as u64);
    Ok(ChunkedCompressed {
        bytes: out,
        chunk_stats: Vec::new(),
        cr_total,
    })
}

fn push_u64(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

/// Build a legacy (v1/v2) container for a set of chunk streams. `version`
/// controls whether the CRC-32 column is written (2) or omitted (1).
fn assemble(dims: &[usize], streams: &[Vec<u8>], version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(version);
    out.push(dims.len() as u8);
    for &d in dims {
        push_u64(&mut out, d);
    }
    push_u64(&mut out, streams.len());
    for s in streams {
        push_u64(&mut out, s.len());
    }
    if version >= 2 {
        for s in streams {
            out.extend_from_slice(&crc32(s).to_le_bytes());
        }
    }
    for s in streams {
        out.extend_from_slice(s);
    }
    out
}

/// Build a seekable v4 container: header, streams, index footer, tail.
fn assemble_seekable(
    dims: &[usize],
    streams: &[Vec<u8>],
    rows: &[usize],
    rest: usize,
    progressive: Option<&[ProgressiveLayout]>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION_SEEKABLE);
    out.push(dims.len() as u8);
    for &d in dims {
        push_u64(&mut out, d);
    }
    out.push(if progressive.is_some() {
        FLAG_PROGRESSIVE
    } else {
        0
    });
    let header_len = out.len();
    for s in streams {
        out.extend_from_slice(s);
    }

    let mut footer = Vec::new();
    push_u64(&mut footer, streams.len());
    let mut offset = header_len;
    for (i, s) in streams.iter().enumerate() {
        push_u64(&mut footer, offset);
        push_u64(&mut footer, s.len());
        push_u64(&mut footer, rows[i]);
        push_u64(&mut footer, rows[i] * rest);
        footer.extend_from_slice(&crc32(s).to_le_bytes());
        offset += s.len();
    }
    if let Some(layouts) = progressive {
        for l in layouts {
            push_u64(&mut footer, l.components.len());
            push_u64(&mut footer, l.model_end);
            for c in &l.components {
                push_u64(&mut footer, c.end);
                footer.extend_from_slice(&c.energy.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&footer);
    push_u64(&mut out, footer.len());
    out.extend_from_slice(&crc32(&footer).to_le_bytes());
    out.extend_from_slice(TAIL_MAGIC);
    out
}

/// One chunk's entry in the v4 index footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the chunk stream within the container.
    pub offset: usize,
    /// Byte length of the chunk stream.
    pub len: usize,
    /// Slab height along the slowest axis.
    pub rows: usize,
    /// Raw value count (`rows ×` product of the remaining dims).
    pub values: usize,
    /// CRC-32 of the chunk stream bytes.
    pub crc: u32,
}

/// Byte range of one energy-ordered component (footer copy of
/// [`container::ComponentSpan`], offsets relative to the chunk stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentEntry {
    /// Exclusive end offset within the chunk stream.
    pub end: usize,
    /// Captured energy of the component.
    pub energy: f64,
}

/// Per-chunk progressive layout from the footer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveEntry {
    /// Stored component count.
    pub k: usize,
    /// End of the header + model section within the chunk stream.
    pub model_end: usize,
    /// Component spans in stored (energy-descending) order.
    pub components: Vec<ComponentEntry>,
}

/// Parsed v4 index: everything a seekable reader needs to locate, size, and
/// verify chunks without touching the payload. [`SeekableIndex::read`]
/// fetches only the header, tail, and footer from a `Read + Seek` source.
#[derive(Debug, Clone, PartialEq)]
pub struct SeekableIndex {
    /// Array dimensions.
    pub dims: Vec<usize>,
    /// Container flag byte (bit 0 = progressive).
    pub flags: u8,
    /// Byte length of the fixed header (= offset of the first chunk).
    pub header_len: usize,
    /// Total container length in bytes.
    pub total_len: usize,
    /// Per-chunk index entries, in slab order.
    pub chunks: Vec<ChunkEntry>,
    /// Per-chunk progressive layouts when bit 0 of `flags` is set.
    pub progressive: Option<Vec<ProgressiveEntry>>,
}

fn io_error(e: std::io::Error) -> DpzError {
    DpzError::Io(e.to_string())
}

/// Bounded little-endian cursor over the footer bytes.
struct FooterCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FooterCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DpzError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DpzError::Corrupt("truncated chunk footer"))?;
        if end > self.buf.len() {
            return Err(DpzError::Corrupt("truncated chunk footer"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<usize, DpzError> {
        let b = self.take(8)?;
        usize::try_from(u64::from_le_bytes(b.try_into().unwrap()))
            .map_err(|_| DpzError::Corrupt("size overflows usize"))
    }

    fn u32(&mut self) -> Result<u32, DpzError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DpzError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Validate and parse the footer body against the header-derived geometry.
/// `payload_end` is the absolute offset one past the last chunk stream.
fn parse_footer(
    footer: &[u8],
    dims: &[usize],
    flags: u8,
    header_len: usize,
    payload_end: usize,
) -> Result<(Vec<ChunkEntry>, Option<Vec<ProgressiveEntry>>), DpzError> {
    if flags & !FLAG_PROGRESSIVE != 0 {
        return Err(DpzError::Corrupt("unknown container flags"));
    }
    let total = checked_product(dims, "dims overflow")?;
    let rest: usize = dims[1..].iter().product::<usize>().max(1);
    let mut cur = FooterCursor {
        buf: footer,
        pos: 0,
    };
    let count = cur.u64()?;
    if count == 0 || count > 1 << 20 {
        return Err(DpzError::Corrupt("implausible chunk count"));
    }
    let mut chunks = Vec::with_capacity(count);
    let mut next_offset = header_len;
    let mut rows_sum = 0usize;
    let mut values_sum = 0usize;
    for _ in 0..count {
        let offset = cur.u64()?;
        let len = cur.u64()?;
        let rows = cur.u64()?;
        let values = cur.u64()?;
        let crc = cur.u32()?;
        // Chunk streams are written back-to-back; an index entry pointing
        // anywhere else (or overlapping) is a forgery, not a variant.
        if offset != next_offset {
            return Err(DpzError::Corrupt("chunk offsets not contiguous"));
        }
        next_offset = offset
            .checked_add(len)
            .ok_or(DpzError::Corrupt("chunk lengths overflow"))?;
        if rows == 0
            || rows.checked_mul(rest) != Some(values)
            || rows_sum.checked_add(rows).is_none()
            || values_sum.checked_add(values).is_none()
        {
            return Err(DpzError::Corrupt("chunk shape inconsistent"));
        }
        rows_sum += rows;
        values_sum += values;
        chunks.push(ChunkEntry {
            offset,
            len,
            rows,
            values,
            crc,
        });
    }
    if next_offset != payload_end {
        return Err(DpzError::Corrupt("chunk payload length mismatch"));
    }
    if rows_sum != dims[0] || values_sum != total {
        return Err(DpzError::Corrupt("chunk shape inconsistent"));
    }
    let progressive = if flags & FLAG_PROGRESSIVE != 0 {
        let mut entries = Vec::with_capacity(count);
        for e in &chunks {
            let k = cur.u64()?;
            if k == 0 || k > 1 << 16 {
                return Err(DpzError::Corrupt("implausible component count"));
            }
            let model_end = cur.u64()?;
            if model_end == 0 || model_end >= e.len {
                return Err(DpzError::Corrupt("invalid progressive layout"));
            }
            let mut components = Vec::with_capacity(k);
            let mut prev = model_end;
            for _ in 0..k {
                let end = cur.u64()?;
                let energy = cur.f64()?;
                if end <= prev || end > e.len {
                    return Err(DpzError::Corrupt("invalid progressive layout"));
                }
                if !energy.is_finite() || energy < 0.0 {
                    return Err(DpzError::Corrupt("invalid component energy"));
                }
                components.push(ComponentEntry { end, energy });
                prev = end;
            }
            if prev != e.len {
                return Err(DpzError::Corrupt("invalid progressive layout"));
            }
            entries.push(ProgressiveEntry {
                k,
                model_end,
                components,
            });
        }
        Some(entries)
    } else {
        None
    };
    if cur.pos != footer.len() {
        return Err(DpzError::Corrupt("footer length mismatch"));
    }
    Ok((chunks, progressive))
}

impl SeekableIndex {
    /// Parse a whole in-memory v4 container's index.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DpzError> {
        SeekableIndex::read(&mut std::io::Cursor::new(bytes))
    }

    /// Read the index from a seekable source, touching **only** the header,
    /// tail, and footer bytes — the point of the v4 layout. Legacy (v1/v2)
    /// containers are rejected with [`DpzError::BadInput`]; decode those
    /// through the full-stream entry points instead.
    pub fn read<R: Read + Seek>(r: &mut R) -> Result<Self, DpzError> {
        let total_len = usize::try_from(r.seek(SeekFrom::End(0)).map_err(io_error)?)
            .map_err(|_| DpzError::Corrupt("size overflows usize"))?;
        r.seek(SeekFrom::Start(0)).map_err(io_error)?;
        let mut head = [0u8; 6];
        r.read_exact(&mut head).map_err(io_error)?;
        if &head[..4] != MAGIC {
            return Err(DpzError::Corrupt("bad chunk magic"));
        }
        let version = head[4];
        if version != VERSION_SEEKABLE {
            return Err(if (MIN_VERSION..=VERSION_CRC).contains(&version) {
                DpzError::BadInput("seekable retrieval requires a v4 container")
            } else {
                DpzError::Corrupt("unsupported chunk version")
            });
        }
        let ndims = head[5] as usize;
        if ndims == 0 || ndims > 8 {
            return Err(DpzError::Corrupt("implausible dimensionality"));
        }
        let mut rest_hdr = vec![0u8; 8 * ndims + 1];
        r.read_exact(&mut rest_hdr).map_err(io_error)?;
        let mut dims = Vec::with_capacity(ndims);
        for c in rest_hdr[..8 * ndims].chunks_exact(8) {
            let v = u64::from_le_bytes(c.try_into().unwrap());
            dims.push(usize::try_from(v).map_err(|_| DpzError::Corrupt("size overflows usize"))?);
        }
        let flags = rest_hdr[8 * ndims];
        let header_len = 6 + 8 * ndims + 1;
        if total_len < header_len + TAIL_LEN {
            return Err(DpzError::Corrupt("truncated chunk footer"));
        }

        r.seek(SeekFrom::End(-(TAIL_LEN as i64)))
            .map_err(io_error)?;
        let mut tail = [0u8; TAIL_LEN];
        r.read_exact(&mut tail).map_err(io_error)?;
        if &tail[12..] != TAIL_MAGIC {
            return Err(DpzError::Corrupt("bad footer magic"));
        }
        let footer_len = usize::try_from(u64::from_le_bytes(tail[..8].try_into().unwrap()))
            .map_err(|_| DpzError::Corrupt("size overflows usize"))?;
        let stored_crc = u32::from_le_bytes(tail[8..12].try_into().unwrap());
        if footer_len > total_len - header_len - TAIL_LEN {
            return Err(DpzError::Corrupt("truncated chunk footer"));
        }
        let footer_start = total_len - TAIL_LEN - footer_len;
        r.seek(SeekFrom::Start(footer_start as u64))
            .map_err(io_error)?;
        let mut footer = vec![0u8; footer_len];
        r.read_exact(&mut footer).map_err(io_error)?;
        if crc32(&footer) != stored_crc {
            return Err(DpzError::Corrupt("footer checksum mismatch"));
        }
        let (chunks, progressive) = parse_footer(&footer, &dims, flags, header_len, footer_start)?;
        Ok(SeekableIndex {
            dims,
            flags,
            header_len,
            total_len,
            chunks,
            progressive,
        })
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the container carries progressive component layouts.
    pub fn is_progressive(&self) -> bool {
        self.progressive.is_some()
    }

    /// Fetch one chunk's stream bytes from a seekable source and verify its
    /// CRC. Reads exactly `chunks[i].len` bytes.
    pub fn read_chunk<R: Read + Seek>(&self, r: &mut R, i: usize) -> Result<Vec<u8>, DpzError> {
        let e = self
            .chunks
            .get(i)
            .ok_or(DpzError::BadInput("chunk index out of range"))?;
        r.seek(SeekFrom::Start(e.offset as u64)).map_err(io_error)?;
        let mut buf = vec![0u8; e.len];
        r.read_exact(&mut buf).map_err(io_error)?;
        if crc32(&buf) != e.crc {
            return Err(DpzError::Corrupt("chunk checksum mismatch"));
        }
        Ok(buf)
    }
}

/// Parsed legacy (v1/v2) chunk directory.
struct Directory<'a> {
    dims: Vec<usize>,
    /// Byte range of each chunk stream within `payload`.
    ranges: Vec<(usize, usize)>,
    /// Stored per-chunk CRC-32 values (empty for version-1 containers).
    crcs: Vec<u32>,
    payload: &'a [u8],
    info: ContainerInfo,
}

impl Directory<'_> {
    /// Verify the stored CRC of chunk `i` against its payload bytes.
    /// Version-1 directories have no checksums and trivially pass.
    fn check_chunk(&self, i: usize) -> Result<(), DpzError> {
        if let Some(&stored) = self.crcs.get(i) {
            let (lo, hi) = self.ranges[i];
            if crc32(&self.payload[lo..hi]) != stored {
                return Err(DpzError::Corrupt("chunk checksum mismatch"));
            }
        }
        Ok(())
    }
}

fn parse_directory(bytes: &[u8]) -> Result<Directory<'_>, DpzError> {
    let need = |ok: bool| {
        if ok {
            Ok(())
        } else {
            Err(DpzError::Corrupt("truncated chunk directory"))
        }
    };
    need(bytes.len() >= 6)?;
    if &bytes[..4] != MAGIC {
        return Err(DpzError::Corrupt("bad chunk magic"));
    }
    let version = bytes[4];
    if !(MIN_VERSION..=VERSION_CRC).contains(&version) {
        return Err(DpzError::Corrupt("unsupported chunk version"));
    }
    let checksummed = version >= 2;
    let ndims = bytes[5] as usize;
    if ndims == 0 || ndims > 8 {
        return Err(DpzError::Corrupt("implausible dimensionality"));
    }
    let mut pos = 6;
    let u64_at = |p: &mut usize| -> Result<usize, DpzError> {
        need(bytes.len() >= p.checked_add(8).ok_or(DpzError::Corrupt("size overflow"))?)?;
        let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().unwrap());
        *p += 8;
        usize::try_from(v).map_err(|_| DpzError::Corrupt("size overflow"))
    };
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(u64_at(&mut pos)?);
    }
    // Validate the dims product up front (checked: eight huge dims must be a
    // decode error, not a multiply-overflow panic in the stitch step).
    checked_product(&dims, "dims overflow")?;
    let count = u64_at(&mut pos)?;
    if count == 0 || count > 1 << 20 {
        return Err(DpzError::Corrupt("implausible chunk count"));
    }
    let mut lens = Vec::with_capacity(count);
    for _ in 0..count {
        lens.push(u64_at(&mut pos)?);
    }
    let mut crcs = Vec::new();
    if checksummed {
        crcs.reserve(count);
        for _ in 0..count {
            need(bytes.len() >= pos + 4)?;
            crcs.push(u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
    }
    let payload = &bytes[pos..];
    // Checked fold: a directory of near-usize::MAX lengths used to wrap the
    // plain `iter().sum()` and alias a bogus total onto the payload length.
    let total = lens
        .iter()
        .try_fold(0usize, |acc, &l| acc.checked_add(l))
        .ok_or(DpzError::Corrupt("chunk lengths overflow"))?;
    if total != payload.len() {
        return Err(DpzError::Corrupt("chunk payload length mismatch"));
    }
    let mut ranges = Vec::with_capacity(count);
    let mut offset = 0;
    for len in lens {
        ranges.push((offset, offset + len));
        offset += len;
    }
    Ok(Directory {
        dims,
        ranges,
        crcs,
        payload,
        info: ContainerInfo {
            version,
            checksummed,
            // Placeholder; the decode paths aggregate the inner streams'
            // per-section backend flags into this field.
            tans_sections: 0,
        },
    })
}

/// Count a decode failure against the dpzc reject series. Every public
/// decode entry point funnels its fallible body through here so telemetry
/// sees random-access and region rejects, not just full decodes.
fn counted<T>(f: impl FnOnce() -> Result<T, DpzError>) -> Result<T, DpzError> {
    let result = f();
    if result.is_err() {
        dpz_telemetry::global()
            .counter_with("dpz_decode_rejects_total", &[("codec", "dpzc")])
            .inc();
    }
    result
}

/// Decode one chunk stream, dispatching on its inner magic: `DPZ1` (plain
/// pipeline) or `DPZP` (progressive, decoded in full here).
fn decode_stream(stream: &[u8]) -> Result<(Vec<f32>, Vec<usize>, ContainerInfo), DpzError> {
    if stream.starts_with(container::PROGRESSIVE_MAGIC) {
        let (payload, _) = container::deserialize_progressive(stream, None)?;
        let (values, dims) = crate::pipeline::reconstruct_values(&payload)?;
        Ok((
            values,
            dims,
            ContainerInfo {
                version: container::PROGRESSIVE_VERSION,
                checksummed: true,
                tans_sections: 0,
            },
        ))
    } else {
        decompress_with_info(stream)
    }
}

/// Uncounted full decode shared by every entry point; dispatches on the
/// container version byte.
fn full_decode(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>, ContainerInfo), DpzError> {
    let _root = span!("decompress_chunked");
    if bytes.len() < 6 || &bytes[..4] != MAGIC {
        return Err(DpzError::Corrupt("bad chunk magic"));
    }
    if bytes[4] > VERSION_CRC {
        let index = SeekableIndex::from_bytes(bytes)?;
        // CRC verification rides inside the same parallel pass as the
        // decode; results are examined in chunk order, so a corrupt stream
        // fails deterministically regardless of worker scheduling.
        let parts: Vec<Result<(Vec<f32>, ContainerInfo), DpzError>> = index
            .chunks
            .par_iter()
            .map(|e| {
                let s = &bytes[e.offset..e.offset + e.len];
                if crc32(s) != e.crc {
                    return Err(DpzError::Corrupt("chunk checksum mismatch"));
                }
                let (v, _, info) = decode_stream(s)?;
                if v.len() != e.values {
                    return Err(DpzError::Corrupt("stitched length mismatch"));
                }
                Ok((v, info))
            })
            .collect();
        let expected = checked_product(&index.dims, "dims overflow")?;
        let mut out = Vec::new();
        let mut tans = 0u8;
        for p in parts {
            let (v, info) = p?;
            if out.len() + v.len() > expected {
                return Err(DpzError::Corrupt("stitched length mismatch"));
            }
            out.extend_from_slice(&v);
            tans = tans.saturating_add(info.tans_sections);
        }
        if out.len() != expected {
            return Err(DpzError::Corrupt("stitched length mismatch"));
        }
        Ok((
            out,
            index.dims,
            ContainerInfo {
                version: VERSION_SEEKABLE,
                checksummed: true,
                tans_sections: tans,
            },
        ))
    } else {
        let dir = parse_directory(bytes)?;
        let indexed: Vec<(usize, (usize, usize))> =
            dir.ranges.iter().copied().enumerate().collect();
        let parts: Vec<Result<(Vec<f32>, ContainerInfo), DpzError>> = indexed
            .par_iter()
            .map(|&(i, (lo, hi))| {
                dir.check_chunk(i)?;
                let (v, _, info) = decompress_with_info(&dir.payload[lo..hi])?;
                Ok((v, info))
            })
            .collect();
        let expected = checked_product(&dir.dims, "dims overflow")?;
        let mut out = Vec::new();
        let mut tans = 0u8;
        for p in parts {
            let (v, info) = p?;
            if out.len() + v.len() > expected {
                return Err(DpzError::Corrupt("stitched length mismatch"));
            }
            out.extend_from_slice(&v);
            tans = tans.saturating_add(info.tans_sections);
        }
        if out.len() != expected {
            return Err(DpzError::Corrupt("stitched length mismatch"));
        }
        let mut info = dir.info;
        info.tans_sections = tans;
        Ok((out, dir.dims, info))
    }
}

/// Decompress a chunked container (chunks in parallel), returning the full
/// array and its dimensions.
pub fn decompress_chunked(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    decompress_chunked_with_info(bytes).map(|(v, dims, _)| (v, dims))
}

/// [`decompress_chunked`] that also reports the container version, checksum
/// status, and the aggregate (saturating) tANS section count across the
/// inner chunk streams.
pub fn decompress_chunked_with_info(
    bytes: &[u8],
) -> Result<(Vec<f32>, Vec<usize>, ContainerInfo), DpzError> {
    counted(|| full_decode(bytes))
}

/// Number of chunks in a chunked container.
pub fn chunk_count(bytes: &[u8]) -> Result<usize, DpzError> {
    counted(|| {
        if bytes.len() < 6 || &bytes[..4] != MAGIC {
            return Err(DpzError::Corrupt("bad chunk magic"));
        }
        if bytes[4] > VERSION_CRC {
            Ok(SeekableIndex::from_bytes(bytes)?.chunks.len())
        } else {
            Ok(parse_directory(bytes)?.ranges.len())
        }
    })
}

/// Decompress a single chunk (random access). Returns the slab's values and
/// its dims (slowest axis shrunk to the slab height). Only the requested
/// chunk's bytes are CRC-verified — the point of random access.
pub fn decompress_chunk(bytes: &[u8], index: usize) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    counted(|| {
        if bytes.len() < 6 || &bytes[..4] != MAGIC {
            return Err(DpzError::Corrupt("bad chunk magic"));
        }
        if bytes[4] > VERSION_CRC {
            let idx = SeekableIndex::from_bytes(bytes)?;
            let e = *idx
                .chunks
                .get(index)
                .ok_or(DpzError::BadInput("chunk index out of range"))?;
            let s = &bytes[e.offset..e.offset + e.len];
            if crc32(s) != e.crc {
                return Err(DpzError::Corrupt("chunk checksum mismatch"));
            }
            let (v, d, _) = decode_stream(s)?;
            Ok((v, d))
        } else {
            let dir = parse_directory(bytes)?;
            let &(lo, hi) = dir
                .ranges
                .get(index)
                .ok_or(DpzError::BadInput("chunk index out of range"))?;
            dir.check_chunk(index)?;
            decompress(&dir.payload[lo..hi])
        }
    })
}

/// [`decompress_chunk`] against a seekable source: reads only the header,
/// footer, and the requested chunk's bytes. v4 containers only.
pub fn decompress_chunk_from<R: Read + Seek>(
    r: &mut R,
    index: usize,
) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    counted(|| {
        let idx = SeekableIndex::read(r)?;
        let stream = idx.read_chunk(r, index)?;
        let (v, d, _) = decode_stream(&stream)?;
        Ok((v, d))
    })
}

fn validate_region(dims: &[usize], region: &[Range<usize>]) -> Result<(), DpzError> {
    if region.len() != dims.len() {
        return Err(DpzError::BadInput("region rank does not match dims"));
    }
    for (r, &d) in region.iter().zip(dims) {
        if r.start >= r.end || r.end > d {
            return Err(DpzError::BadInput("empty or out-of-range region"));
        }
    }
    Ok(())
}

/// Chunks overlapping `rows` along axis 0, with the overlap rebased to each
/// chunk's local row coordinates.
fn overlapping_chunks(chunks: &[ChunkEntry], rows: &Range<usize>) -> Vec<(usize, Range<usize>)> {
    let mut selected = Vec::new();
    let mut row0 = 0usize;
    for (i, e) in chunks.iter().enumerate() {
        let lo = rows.start.max(row0);
        let hi = rows.end.min(row0 + e.rows);
        if lo < hi {
            selected.push((i, lo - row0..hi - row0));
        }
        row0 += e.rows;
    }
    selected
}

fn stitch_region_parts(
    parts: Vec<Result<Vec<f32>, DpzError>>,
    region: &[Range<usize>],
) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    let out_dims: Vec<usize> = region.iter().map(|r| r.end - r.start).collect();
    let expected = checked_product(&out_dims, "dims overflow")?;
    let mut out = Vec::new();
    for p in parts {
        let v = p?;
        if out.len() + v.len() > expected {
            return Err(DpzError::Corrupt("stitched length mismatch"));
        }
        out.extend_from_slice(&v);
    }
    if out.len() != expected {
        return Err(DpzError::Corrupt("stitched length mismatch"));
    }
    Ok((out, out_dims))
}

/// Extract the slab-local sub-region from one decoded chunk.
fn crop_chunk(
    values: &[f32],
    slab_dims: &[usize],
    entry: &ChunkEntry,
    local_rows: Range<usize>,
    region: &[Range<usize>],
) -> Result<Vec<f32>, DpzError> {
    if slab_dims.len() != region.len() || slab_dims[0] != entry.rows || values.len() != entry.values
    {
        return Err(DpzError::Corrupt("chunk dims inconsistent with footer"));
    }
    let mut local: Vec<Range<usize>> = Vec::with_capacity(region.len());
    local.push(local_rows);
    local.extend(region[1..].iter().cloned());
    Ok(extract_region(values, slab_dims, &local))
}

/// Decompress an axis-aligned sub-region (`lo..hi` per axis). On a v4
/// container only the chunks overlapping the region along the slowest axis
/// are CRC-verified and decoded; legacy containers fall back to a full
/// decode plus crop. Returns the region's values and its dims.
pub fn decompress_region(
    bytes: &[u8],
    region: &[Range<usize>],
) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    counted(|| {
        if bytes.len() < 6 || &bytes[..4] != MAGIC {
            return Err(DpzError::Corrupt("bad chunk magic"));
        }
        if bytes[4] > VERSION_CRC {
            let index = SeekableIndex::from_bytes(bytes)?;
            validate_region(&index.dims, region)?;
            let selected = overlapping_chunks(&index.chunks, &region[0]);
            let parts: Vec<Result<Vec<f32>, DpzError>> = selected
                .par_iter()
                .map(|(i, local_rows)| {
                    let e = &index.chunks[*i];
                    let s = &bytes[e.offset..e.offset + e.len];
                    if crc32(s) != e.crc {
                        return Err(DpzError::Corrupt("chunk checksum mismatch"));
                    }
                    let (v, slab_dims, _) = decode_stream(s)?;
                    crop_chunk(&v, &slab_dims, e, local_rows.clone(), region)
                })
                .collect();
            stitch_region_parts(parts, region)
        } else {
            // Legacy streams have no index: decode everything, then crop.
            let (values, dims, _) = full_decode(bytes)?;
            validate_region(&dims, region)?;
            let out = extract_region(&values, &dims, region);
            let out_dims: Vec<usize> = region.iter().map(|r| r.end - r.start).collect();
            Ok((out, out_dims))
        }
    })
}

/// [`decompress_region`] against a seekable source: reads only the header,
/// footer, and the overlapping chunks' bytes. v4 containers only.
pub fn decompress_region_from<R: Read + Seek>(
    r: &mut R,
    region: &[Range<usize>],
) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    counted(|| {
        let index = SeekableIndex::read(r)?;
        validate_region(&index.dims, region)?;
        let selected = overlapping_chunks(&index.chunks, &region[0]);
        // Sequential fetch (one seek per chunk), decode as we go: a Read +
        // Seek source is stateful, so the parallel in-memory path doesn't
        // apply here.
        let mut parts = Vec::with_capacity(selected.len());
        for (i, local_rows) in selected {
            let e = index.chunks[i];
            let stream = index.read_chunk(r, i)?;
            let part = decode_stream(&stream)
                .and_then(|(v, slab_dims, _)| crop_chunk(&v, &slab_dims, &e, local_rows, region));
            parts.push(part);
        }
        stitch_region_parts(parts, region)
    })
}

/// Result of a budgeted progressive decode.
#[derive(Debug, Clone)]
pub struct ProgressiveDecoded {
    /// Reconstructed values (full array extent, reduced fidelity).
    pub values: Vec<f32>,
    /// Array dimensions.
    pub dims: Vec<usize>,
    /// Container-prefix bytes the reconstruction actually consumed
    /// (header + footer + tail + the decoded component prefixes).
    pub bytes_used: usize,
    /// Components decoded per chunk.
    pub components_used: Vec<usize>,
    /// Fraction of the total captured score energy included (1.0 when every
    /// component was decoded, or when the container holds zero energy).
    pub tve_achieved: f64,
    /// PSNR estimate in dB, from the footer's energy model: the omitted
    /// energy, scaled by each chunk's normalization range, approximates the
    /// reconstruction MSE. Infinite when nothing was omitted. An *estimate*
    /// — the exact figure requires the original data.
    pub psnr_estimate: f64,
}

/// Reconstruct a progressive container from a byte budget. The model and
/// highest-energy component of every chunk are mandatory (budgets below
/// that floor are clamped — check `bytes_used` for the actual spend); the
/// remaining budget buys components globally by descending energy, each
/// chunk consuming its stream strictly in prefix order. Growing the budget
/// only ever adds components, so the achieved TVE and the PSNR estimate are
/// monotonically non-decreasing in `budget_bytes`.
pub fn decompress_progressive(
    bytes: &[u8],
    budget_bytes: usize,
) -> Result<ProgressiveDecoded, DpzError> {
    counted(|| {
        let index = SeekableIndex::from_bytes(bytes)?;
        let entries = index
            .progressive
            .as_ref()
            .ok_or(DpzError::BadInput("not a progressive container"))?;
        let payload_bytes: usize = index.chunks.iter().map(|e| e.len).sum();
        let overhead = index.total_len - payload_bytes;

        // Mandatory floor: model + first (highest-energy) component per
        // chunk. Everything past that is bought greedily by energy.
        let mut take: Vec<usize> = vec![1; entries.len()];
        let mandatory: usize =
            overhead + entries.iter().map(|p| p.components[0].end).sum::<usize>();
        struct Cand {
            chunk: usize,
            comp: usize,
            cost: usize,
            energy: f64,
        }
        let mut cands = Vec::new();
        for (ci, p) in entries.iter().enumerate() {
            for j in 1..p.components.len() {
                cands.push(Cand {
                    chunk: ci,
                    comp: j,
                    cost: p.components[j].end - p.components[j - 1].end,
                    energy: p.components[j].energy,
                });
            }
        }
        // Stable sort: within a chunk energies are non-increasing, so each
        // chunk's candidates stay in component order and the prefix
        // constraint below never skips.
        cands.sort_by(|a, b| {
            b.energy
                .partial_cmp(&a.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut remaining = budget_bytes.saturating_sub(mandatory);
        let mut closed = vec![false; entries.len()];
        for c in &cands {
            if closed[c.chunk] || c.comp != take[c.chunk] {
                continue;
            }
            if c.cost <= remaining {
                remaining -= c.cost;
                take[c.chunk] += 1;
            } else {
                // A chunk's stream is consumed in prefix order: once one
                // component doesn't fit, later (cheaper) ones can't be
                // reached either.
                closed[c.chunk] = true;
            }
        }

        let work: Vec<(&ChunkEntry, &ProgressiveEntry, usize)> = index
            .chunks
            .iter()
            .zip(entries.iter())
            .zip(take.iter())
            .map(|((e, p), &k)| (e, p, k))
            .collect();
        let parts: Vec<Result<(Vec<f32>, f64), DpzError>> = work
            .par_iter()
            .map(|&(e, p, k)| {
                let prefix_len = p.components[k - 1].end;
                let s = &bytes[e.offset..e.offset + prefix_len];
                let (payload, _) = container::deserialize_progressive(s, Some(k))?;
                let range = payload.norm_range;
                let (v, _) = crate::pipeline::reconstruct_values(&payload)?;
                if v.len() != e.values {
                    return Err(DpzError::Corrupt("stitched length mismatch"));
                }
                Ok((v, range))
            })
            .collect();
        let expected = checked_product(&index.dims, "dims overflow")?;
        let mut values = Vec::new();
        let mut ranges = Vec::with_capacity(parts.len());
        for p in parts {
            let (v, range) = p?;
            if values.len() + v.len() > expected {
                return Err(DpzError::Corrupt("stitched length mismatch"));
            }
            values.extend_from_slice(&v);
            ranges.push(range);
        }
        if values.len() != expected {
            return Err(DpzError::Corrupt("stitched length mismatch"));
        }

        let mut total_energy = 0.0;
        let mut included_energy = 0.0;
        let mut mse_est = 0.0;
        let mut peak = 0.0f64;
        for ((p, &k), &range) in entries.iter().zip(&take).zip(&ranges) {
            let mut omitted = 0.0;
            for (j, c) in p.components.iter().enumerate() {
                total_energy += c.energy;
                if j < k {
                    included_energy += c.energy;
                } else {
                    omitted += c.energy;
                }
            }
            mse_est += omitted * range * range / expected as f64;
            peak = peak.max(range);
        }
        let tve_achieved = if total_energy > 0.0 {
            included_energy / total_energy
        } else {
            1.0
        };
        let psnr_estimate = if mse_est > 0.0 && peak > 0.0 {
            10.0 * ((peak * peak) / mse_est).log10()
        } else {
            f64::INFINITY
        };
        let bytes_used = overhead
            + entries
                .iter()
                .zip(&take)
                .map(|(p, &k)| p.components[k - 1].end)
                .sum::<usize>();
        Ok(ProgressiveDecoded {
            values,
            dims: index.dims,
            bytes_used,
            components_used: take,
            tve_achieved,
            psnr_estimate,
        })
    })
}

/// Re-encode a (non-progressive) v4 container into the legacy v1 or v2
/// layout, for readers predating the index footer. The chunk streams are
/// copied verbatim; only the directory framing changes.
pub fn reencode_legacy(bytes: &[u8], version: u8) -> Result<Vec<u8>, DpzError> {
    if !(MIN_VERSION..=VERSION_CRC).contains(&version) {
        return Err(DpzError::BadInput("unsupported legacy version"));
    }
    let index = SeekableIndex::from_bytes(bytes)?;
    if index.progressive.is_some() {
        return Err(DpzError::BadInput(
            "progressive containers have no legacy form",
        ));
    }
    let streams: Vec<Vec<u8>> = index
        .chunks
        .iter()
        .map(|e| bytes[e.offset..e.offset + e.len].to_vec())
        .collect();
    Ok(assemble(&index.dims, &streams, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TveLevel;
    use crate::container::LosslessBackend;

    fn field(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (0.05 * r).sin() * 10.0 + (0.04 * c).cos() * 5.0
            })
            .collect()
    }

    #[test]
    fn chunked_round_trip_matches_dims() {
        let data = field(64, 48);
        let cfg = DpzConfig::strict().with_tve(TveLevel::SixNines);
        let out = compress_chunked(&data, &[64, 48], &cfg, 4).unwrap();
        assert_eq!(out.chunk_stats.len(), 4);
        let (recon, dims) = decompress_chunked(&out.bytes).unwrap();
        assert_eq!(dims, vec![64, 48]);
        assert_eq!(recon.len(), data.len());
        // Quality in the same regime as whole-field compression.
        let mse: f64 = data
            .iter()
            .zip(&recon)
            .map(|(a, b)| {
                let d = f64::from(*a) - f64::from(*b);
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 1.0, "chunked mse {mse}");
    }

    #[test]
    fn uneven_slabs_handled() {
        // 10 rows into 4 chunks -> 3+3+3+1.
        let data = field(10, 40);
        let out = compress_chunked(&data, &[10, 40], &DpzConfig::loose(), 4).unwrap();
        let (recon, dims) = decompress_chunked(&out.bytes).unwrap();
        assert_eq!(dims, vec![10, 40]);
        assert_eq!(recon.len(), 400);
    }

    #[test]
    fn random_access_single_chunk() {
        let data = field(32, 32);
        let out = compress_chunked(&data, &[32, 32], &DpzConfig::loose(), 4).unwrap();
        assert_eq!(chunk_count(&out.bytes).unwrap(), 4);
        let (slab, dims) = decompress_chunk(&out.bytes, 2).unwrap();
        assert_eq!(dims, vec![8, 32]);
        // Chunk 2 covers rows 16..24.
        for (i, v) in slab.iter().enumerate() {
            let expect = data[16 * 32 + i];
            assert!((v - expect).abs() < 0.5, "idx {i}: {v} vs {expect}");
        }
        assert!(decompress_chunk(&out.bytes, 9).is_err());
    }

    #[test]
    fn random_access_last_ragged_chunk_reports_chunk_local_dims() {
        // 10 rows into 4 chunks -> slabs of 3+3+3+1 rows. The final chunk
        // must report its *own* shape ([1, 40]), not the whole-array dims.
        let data = field(10, 40);
        let out = compress_chunked(&data, &[10, 40], &DpzConfig::loose(), 4).unwrap();
        assert_eq!(chunk_count(&out.bytes).unwrap(), 4);
        let (slab, dims) = decompress_chunk(&out.bytes, 3).unwrap();
        assert_eq!(dims, vec![1, 40], "ragged tail must have chunk-local dims");
        assert_eq!(slab.len(), 40);
        for (i, v) in slab.iter().enumerate() {
            let expect = data[9 * 40 + i];
            assert!((v - expect).abs() < 0.5, "idx {i}: {v} vs {expect}");
        }
        // A full-height interior chunk reports its slab shape too.
        let (_, dims) = decompress_chunk(&out.bytes, 1).unwrap();
        assert_eq!(dims, vec![3, 40]);
    }

    #[test]
    fn one_chunk_equals_plain_pipeline() {
        let data = field(16, 16);
        let cfg = DpzConfig::loose();
        let chunked = compress_chunked(&data, &[16, 16], &cfg, 1).unwrap();
        let (a, _) = decompress_chunked(&chunked.bytes).unwrap();
        let plain = crate::pipeline::compress(&data, &[16, 16], &cfg).unwrap();
        let (b, _) = crate::pipeline::decompress(&plain.bytes).unwrap();
        assert_eq!(a, b, "single chunk must reproduce the plain pipeline");
    }

    /// 16 slabs of 128 rows x 256 cols: each slab decomposes to M = 128
    /// blocks, which routes stage 2 through the randomized range-finder
    /// (sketch·4 < M) — the shape the cross-wave warm-start rides on.
    const WARM_ROWS_PER_CHUNK: usize = 128;
    const WARM_COLS: usize = 256;
    const WARM_CHUNKS: usize = 16;

    #[test]
    fn warm_start_chains_across_waves_on_similar_chunks() {
        // Every chunk carries identical data, so wave 2's fits (chunks
        // 8..16) are seeded with the exact converged basis of their own
        // matrix — the warm path must engage and hit the TVE target on the
        // first sketch.
        let rows = WARM_ROWS_PER_CHUNK * WARM_CHUNKS;
        let data: Vec<f32> = (0..rows * WARM_COLS)
            .map(|i| {
                let r = ((i / WARM_COLS) % WARM_ROWS_PER_CHUNK) as f32;
                let c = (i % WARM_COLS) as f32;
                (0.05 * r).sin() * 10.0
                    + (0.04 * c).cos() * 5.0
                    + (0.03 * r).cos() * (0.02 * c).sin() * 2.0
            })
            .collect();
        let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
        let before = dpz_telemetry::global().snapshot();
        let out = compress_chunked(&data, &[rows, WARM_COLS], &cfg, WARM_CHUNKS).unwrap();
        let delta = dpz_telemetry::global().snapshot().since(&before);
        assert!(
            delta.counter("dpz_pca_warm_hits_total", &[]).unwrap_or(0) >= 1,
            "wave 2 should reuse the converged basis from wave 1"
        );
        // Quality certificate holds for every chunk, warm or cold.
        let target = TveLevel::FiveNines.fraction();
        for (i, s) in out.chunk_stats.iter().enumerate() {
            assert!(
                s.tve_achieved >= target,
                "chunk {i} tve {} < {target}",
                s.tve_achieved
            );
        }
        let (recon, dims) = decompress_chunked(&out.bytes).unwrap();
        assert_eq!(dims, vec![rows, WARM_COLS]);
        let max_err = data
            .iter()
            .zip(&recon)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.5, "round-trip error {max_err}");
    }

    #[test]
    fn dissimilar_chunks_fall_back_to_cold_fits_with_no_quality_loss() {
        // First half: smooth low-rank data. Second half: pseudo-noise with
        // a completely different (much flatter) spectrum. The wave-2 warm
        // seed comes from the smooth regime and cannot certify the noise
        // chunks' TVE, so the fitter must fall back to cold fits — and
        // those must be *identical* to compressing the noise half with no
        // warm chain at all (the gate leaves no residue).
        let rows = WARM_ROWS_PER_CHUNK * WARM_CHUNKS;
        let half = rows / 2;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        };
        let data: Vec<f32> = (0..rows * WARM_COLS)
            .map(|i| {
                let r = i / WARM_COLS;
                let c = (i % WARM_COLS) as f32;
                if r < half {
                    (0.05 * r as f32).sin() * 10.0 + (0.04 * c).cos() * 5.0
                } else {
                    noise() * 8.0
                }
            })
            .collect();
        let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
        let before = dpz_telemetry::global().snapshot();
        let out = compress_chunked(&data, &[rows, WARM_COLS], &cfg, WARM_CHUNKS).unwrap();
        let delta = dpz_telemetry::global().snapshot().since(&before);
        assert!(
            delta
                .counter("dpz_pca_warm_cold_fallbacks_total", &[])
                .unwrap_or(0)
                >= 1,
            "noise chunks must reject the smooth-regime warm seed"
        );
        // No quality loss from the rejected handoff: every chunk still
        // certifies the TVE target.
        let target = TveLevel::FiveNines.fraction();
        for (i, s) in out.chunk_stats.iter().enumerate() {
            assert!(
                s.tve_achieved >= target,
                "chunk {i} tve {} < {target}",
                s.tve_achieved
            );
        }
        // Bitwise parity with a cold compression of the noise half alone:
        // a gated-out warm seed must leave artifacts identical to never
        // having offered one. (Chunks 8.. of the combined container line up
        // with chunks 0.. of the standalone second half, whose first wave
        // runs cold by construction.)
        let cold = compress_chunked(
            &data[half * WARM_COLS..],
            &[half, WARM_COLS],
            &cfg,
            WARM_CHUNKS / 2,
        )
        .unwrap();
        for i in 0..WARM_CHUNKS / 2 {
            let (warm_vals, _) = decompress_chunk(&out.bytes, WARM_CHUNKS / 2 + i).unwrap();
            let (cold_vals, _) = decompress_chunk(&cold.bytes, i).unwrap();
            assert_eq!(
                warm_vals, cold_vals,
                "noise chunk {i} decoded differently under the warm chain"
            );
        }
    }

    #[test]
    fn corrupt_directory_rejected() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        assert!(decompress_chunked(&out.bytes[..10]).is_err());
        let mut bad = out.bytes.clone();
        bad[0] = b'X';
        assert!(decompress_chunked(&bad).is_err());
        assert!(decompress_chunked(&[]).is_err());
    }

    #[test]
    fn v4_writer_emits_index_footer() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        assert_eq!(out.bytes[4], VERSION_SEEKABLE);
        assert_eq!(&out.bytes[out.bytes.len() - 4..], TAIL_MAGIC);
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        assert_eq!(idx.chunk_count(), 2);
        assert!(!idx.is_progressive());
        assert_eq!(idx.dims, vec![16, 16]);
        assert_eq!(idx.chunks[0].rows + idx.chunks[1].rows, 16);
        assert_eq!(idx.chunks[0].offset, idx.header_len);
        assert_eq!(
            idx.chunks[1].offset,
            idx.chunks[0].offset + idx.chunks[0].len
        );
    }

    #[test]
    fn legacy_reencodes_still_decode() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let (b, dims_b, info4) = decompress_chunked_with_info(&out.bytes).unwrap();
        assert_eq!(info4.version, VERSION_SEEKABLE);
        assert!(info4.checksummed);
        for version in [1u8, 2u8] {
            let legacy = reencode_legacy(&out.bytes, version).unwrap();
            assert_eq!(legacy[4], version);
            // Re-encoding is deterministic: same input, same bytes.
            assert_eq!(legacy, reencode_legacy(&out.bytes, version).unwrap());
            let (a, dims_a, info) = decompress_chunked_with_info(&legacy).unwrap();
            assert_eq!(info.version, version);
            assert_eq!(info.checksummed, version >= 2);
            assert_eq!(a, b, "v{version} reencode must decode identically");
            assert_eq!(dims_a, dims_b);
            assert_eq!(chunk_count(&legacy).unwrap(), 2);
        }
        assert!(reencode_legacy(&out.bytes, 3).is_err());
    }

    #[test]
    fn corrupted_chunk_payload_fails_crc() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        let e = idx.chunks[1];
        let mut bad = out.bytes.clone();
        bad[e.offset + e.len / 2] ^= 0xFF; // inside the last chunk's stream
        assert!(matches!(
            decompress_chunked(&bad),
            Err(DpzError::Corrupt("chunk checksum mismatch"))
        ));
        // Random access to an *undamaged* chunk still works; the damaged
        // one fails alone.
        assert!(decompress_chunk(&bad, 0).is_ok());
        assert!(decompress_chunk(&bad, 1).is_err());
    }

    #[test]
    fn truncated_or_forged_footer_rejected() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let n = out.bytes.len();
        // Cuts inside the tail, the footer, and the payload all fail.
        for cut in [n - 1, n - 8, n - TAIL_LEN, n - TAIL_LEN - 5, n / 2] {
            assert!(decompress_chunked(&out.bytes[..cut]).is_err(), "cut {cut}");
        }
        // Forged footer_len (tail still intact) must be caught.
        let mut bad = out.bytes.clone();
        bad[n - TAIL_LEN..n - 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decompress_chunked(&bad).is_err());
        // Flipping a footer byte breaks the footer CRC.
        let mut bad = out.bytes.clone();
        bad[n - TAIL_LEN - 3] ^= 0xFF;
        assert!(matches!(
            decompress_chunked(&bad),
            Err(DpzError::Corrupt("footer checksum mismatch"))
        ));
    }

    #[test]
    fn unknown_flags_and_versions_rejected() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        let mut bad = out.bytes.clone();
        bad[idx.header_len - 1] |= 0x02; // unknown flag bit
        assert!(matches!(
            decompress_chunked(&bad),
            Err(DpzError::Corrupt("unknown container flags"))
        ));
        // Version 3 is skipped in the DPZC family; 5 is the future.
        for v in [3u8, 5u8] {
            let mut bad = out.bytes.clone();
            bad[4] = v;
            assert!(matches!(
                decompress_chunked(&bad),
                Err(DpzError::Corrupt("unsupported chunk version"))
            ));
        }
    }

    /// `Read + Seek` wrapper counting every byte actually read.
    struct CountingReader<R> {
        inner: R,
        read_bytes: usize,
    }

    impl<R: Read> Read for CountingReader<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.read_bytes += n;
            Ok(n)
        }
    }

    impl<R: Seek> Seek for CountingReader<R> {
        fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
            self.inner.seek(pos)
        }
    }

    fn counting(bytes: &[u8]) -> CountingReader<std::io::Cursor<&[u8]>> {
        CountingReader {
            inner: std::io::Cursor::new(bytes),
            read_bytes: 0,
        }
    }

    #[test]
    fn seekable_chunk_reads_only_requested_bytes() {
        let data = field(32, 32);
        let out = compress_chunked(&data, &[32, 32], &DpzConfig::loose(), 4).unwrap();
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        let last = idx.chunks.last().unwrap();
        let overhead = idx.header_len + (idx.total_len - (last.offset + last.len));

        let mut r = counting(&out.bytes);
        let (slab, dims) = decompress_chunk_from(&mut r, 2).unwrap();
        assert_eq!(dims, vec![8, 32]);
        assert_eq!(
            r.read_bytes,
            overhead + idx.chunks[2].len,
            "must read exactly the index overhead plus the one chunk"
        );
        assert!(r.read_bytes < out.bytes.len());
        let (expect, _) = decompress_chunk(&out.bytes, 2).unwrap();
        assert_eq!(slab, expect);
        // Out-of-range index errors through the seekable path too.
        assert!(decompress_chunk_from(&mut counting(&out.bytes), 9).is_err());
    }

    #[test]
    fn seekable_region_reads_only_overlapping_chunks() {
        let data = field(32, 32);
        let out = compress_chunked(&data, &[32, 32], &DpzConfig::loose(), 4).unwrap();
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        let last = idx.chunks.last().unwrap();
        let overhead = idx.header_len + (idx.total_len - (last.offset + last.len));

        // Rows 4..12 touch chunks 0 and 1 (8 rows each) only.
        let region = vec![4..12, 10..30];
        let mut r = counting(&out.bytes);
        let (vals, dims) = decompress_region_from(&mut r, &region).unwrap();
        assert_eq!(dims, vec![8, 20]);
        assert_eq!(
            r.read_bytes,
            overhead + idx.chunks[0].len + idx.chunks[1].len
        );
        assert!(r.read_bytes < out.bytes.len());
        let (in_mem, in_dims) = decompress_region(&out.bytes, &region).unwrap();
        assert_eq!(vals, in_mem);
        assert_eq!(dims, in_dims);
        // Legacy containers refuse the seekable entry points.
        let legacy = reencode_legacy(&out.bytes, 2).unwrap();
        assert!(matches!(
            decompress_region_from(&mut counting(&legacy), &region),
            Err(DpzError::BadInput(_))
        ));
    }

    #[test]
    fn region_queries_match_full_decode_crop() {
        let data = field(20, 30);
        let out = compress_chunked(&data, &[20, 30], &DpzConfig::loose(), 4).unwrap();
        let (full, dims) = decompress_chunked(&out.bytes).unwrap();
        let region = vec![3..17, 5..25];
        let (vals, rdims) = decompress_region(&out.bytes, &region).unwrap();
        assert_eq!(rdims, vec![14, 20]);
        assert_eq!(vals, extract_region(&full, &dims, &region));
        // Values stay close to the original data in the cropped window.
        for (i, v) in vals.iter().enumerate() {
            let (r, c) = (3 + i / 20, 5 + i % 20);
            let expect = data[r * 30 + c];
            assert!((v - expect).abs() < 0.5, "({r},{c}): {v} vs {expect}");
        }
    }

    #[test]
    fn ragged_tail_region_queries_work() {
        // 10 rows into 4 chunks -> 3+3+3+1; rows 8..10 straddle the last
        // full chunk and the 1-row ragged tail.
        let data = field(10, 40);
        let out = compress_chunked(&data, &[10, 40], &DpzConfig::loose(), 4).unwrap();
        let (full, dims) = decompress_chunked(&out.bytes).unwrap();
        let region = vec![8..10, 12..29];
        let (vals, rdims) = decompress_region(&out.bytes, &region).unwrap();
        assert_eq!(rdims, vec![2, 17]);
        assert_eq!(vals, extract_region(&full, &dims, &region));
        // A region entirely inside the ragged tail also works.
        let (tail_vals, tail_dims) = decompress_region(&out.bytes, &[9..10, 0..40]).unwrap();
        assert_eq!(tail_dims, vec![1, 40]);
        assert_eq!(tail_vals, extract_region(&full, &dims, &[9..10, 0..40]));
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // a 1-D region IS one range
    fn region_rejects_bad_ranges() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        assert!(decompress_region(&out.bytes, &[0..16]).is_err()); // rank
        assert!(decompress_region(&out.bytes, &[0..16, 5..5]).is_err()); // empty
        assert!(decompress_region(&out.bytes, &[0..17, 0..16]).is_err()); // oob
    }

    #[test]
    fn legacy_region_falls_back_to_full_decode() {
        let data = field(20, 30);
        let out = compress_chunked(&data, &[20, 30], &DpzConfig::loose(), 4).unwrap();
        let legacy = reencode_legacy(&out.bytes, 2).unwrap();
        let region = vec![3..17, 5..25];
        let (a, da) = decompress_region(&legacy, &region).unwrap();
        let (b, db) = decompress_region(&out.bytes, &region).unwrap();
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn progressive_budgets_refine_monotonically() {
        let data = field(64, 48);
        let cfg = DpzConfig::strict().with_tve(TveLevel::SixNines);
        let out = compress_progressive(&data, &[64, 48], &cfg, 4).unwrap();
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        assert!(idx.is_progressive());

        // The whole container still decodes through the ordinary path.
        let (full, dims) = decompress_chunked(&out.bytes).unwrap();
        assert_eq!(dims, vec![64, 48]);

        let total = out.bytes.len();
        let budgets = [total / 4, total / 2, 3 * total / 4, total];
        let mut prev_psnr = f64::NEG_INFINITY;
        let mut prev_tve = -1.0;
        let mut decoded = Vec::new();
        for &b in &budgets {
            let d = decompress_progressive(&out.bytes, b).unwrap();
            assert_eq!(d.dims, vec![64, 48]);
            assert_eq!(d.values.len(), data.len());
            assert!(d.bytes_used <= total);
            assert!(
                d.psnr_estimate >= prev_psnr,
                "psnr must not regress: {} -> {}",
                prev_psnr,
                d.psnr_estimate
            );
            assert!(d.tve_achieved >= prev_tve);
            assert!(d.tve_achieved <= 1.0 + 1e-12);
            prev_psnr = d.psnr_estimate;
            prev_tve = d.tve_achieved;
            decoded.push(d);
        }
        // The full budget reproduces the ordinary decode exactly and
        // reports every component used.
        let last = decoded.last().unwrap();
        assert_eq!(last.values, full);
        let entries = idx.progressive.as_ref().unwrap();
        for (used, p) in last.components_used.iter().zip(entries) {
            assert_eq!(*used, p.k);
        }
        assert!((last.tve_achieved - 1.0).abs() < 1e-12);
        // The quarter budget really did decode fewer components, and the
        // true reconstruction error shrinks as the budget grows.
        let first = &decoded[0];
        assert!(
            first.components_used.iter().sum::<usize>()
                < last.components_used.iter().sum::<usize>(),
            "quarter budget must drop components"
        );
        assert!(first.psnr_estimate < last.psnr_estimate);
        let mse = |vals: &[f32]| {
            data.iter()
                .zip(vals)
                .map(|(a, b)| {
                    let d = f64::from(*a) - f64::from(*b);
                    d * d
                })
                .sum::<f64>()
                / data.len() as f64
        };
        assert!(mse(&last.values) <= mse(&first.values));
        // A budget of zero clamps to the mandatory floor.
        let floor = decompress_progressive(&out.bytes, 0).unwrap();
        assert!(floor.components_used.iter().all(|&k| k >= 1));
        assert!(floor.bytes_used > 0);
        // Non-progressive containers refuse the progressive entry point.
        let plain = compress_chunked(&data, &[64, 48], &cfg, 4).unwrap();
        assert!(matches!(
            decompress_progressive(&plain.bytes, total),
            Err(DpzError::BadInput("not a progressive container"))
        ));
    }

    #[test]
    fn progressive_rejects_legacy_reencode_and_permuted_footer() {
        let data = field(32, 32);
        let out = compress_progressive(&data, &[32, 32], &DpzConfig::loose(), 2).unwrap();
        // Progressive chunks cannot be framed as legacy containers.
        assert!(reencode_legacy(&out.bytes, 2).is_err());
        // Swapping two component records breaks the strictly-increasing end
        // offsets; the forged footer (CRC recomputed) must be rejected.
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        let entries = idx.progressive.as_ref().unwrap();
        assert!(entries[0].k >= 2, "need two components to permute");
        let n = out.bytes.len();
        let footer_len = usize::try_from(u64::from_le_bytes(
            out.bytes[n - 16..n - 8].try_into().unwrap(),
        ))
        .unwrap();
        let footer_start = n - TAIL_LEN - footer_len;
        // First progressive record sits after count + per-chunk entries.
        let comp0 = footer_start + 8 + idx.chunks.len() * 36 + 16;
        let mut bad = out.bytes.clone();
        let (a, b) = (comp0, comp0 + 16);
        for i in 0..16 {
            bad.swap(a + i, b + i);
        }
        let crc = crc32(&bad[footer_start..n - TAIL_LEN]);
        bad[n - 8..n - 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decompress_chunked(&bad),
            Err(DpzError::Corrupt("invalid progressive layout"))
        ));
    }

    #[test]
    fn all_decode_entry_points_count_rejects() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let before = dpz_telemetry::global().snapshot();
        assert!(decompress_chunked(b"DPZCxxxx").is_err());
        assert!(chunk_count(b"not even magic").is_err());
        assert!(decompress_chunk(&out.bytes, 99).is_err());
        assert!(decompress_region(&out.bytes, &[0..99, 0..99]).is_err());
        assert!(decompress_progressive(&out.bytes, 1024).is_err());
        assert!(decompress_chunk_from(&mut counting(&out.bytes), 99).is_err());
        let delta = dpz_telemetry::global().snapshot().since(&before);
        assert!(
            delta
                .counter("dpz_decode_rejects_total", &[("codec", "dpzc")])
                .unwrap_or(0)
                >= 6,
            "every entry point must count its reject"
        );
    }

    #[test]
    fn chunked_info_aggregates_inner_tans_sections() {
        let data = field(64, 96);
        let cfg = DpzConfig::strict()
            .with_tve(TveLevel::SixNines)
            .with_lossless(LosslessBackend::Tans);
        let out = compress_chunked(&data, &[64, 96], &cfg, 2).unwrap();
        let idx = SeekableIndex::from_bytes(&out.bytes).unwrap();
        let mut expect = 0u8;
        for e in &idx.chunks {
            let (_, _, info) =
                decompress_with_info(&out.bytes[e.offset..e.offset + e.len]).unwrap();
            expect = expect.saturating_add(info.tans_sections);
        }
        assert!(
            expect >= 1,
            "inner chunks must actually engage tANS for this test to bite"
        );
        let (_, _, outer) = decompress_chunked_with_info(&out.bytes).unwrap();
        assert_eq!(outer.tans_sections, expect);
        // Legacy reencodes aggregate too.
        let legacy = reencode_legacy(&out.bytes, 2).unwrap();
        let (_, _, li) = decompress_chunked_with_info(&legacy).unwrap();
        assert_eq!(li.tans_sections, expect);
    }

    #[test]
    fn overflowing_chunk_lengths_are_corrupt_not_panic() {
        // Regression: a directory whose lengths sum past usize::MAX used to
        // wrap `lens.iter().sum()` (debug: add-overflow panic; release: a
        // bogus aliased total).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(1); // v1: no crc column needed to reach the sum
        bytes.push(1); // ndims
        bytes.extend_from_slice(&16u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes()); // count
        for _ in 0..3 {
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        assert!(matches!(
            decompress_chunked(&bytes),
            Err(DpzError::Corrupt("chunk lengths overflow"))
        ));
    }

    #[test]
    fn overflowing_dims_are_corrupt_not_panic() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(1);
        bytes.push(8);
        for _ in 0..8 {
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        bytes.extend_from_slice(&1u64.to_le_bytes()); // count
        bytes.extend_from_slice(&0u64.to_le_bytes()); // one empty chunk
        assert!(matches!(
            decompress_chunked(&bytes),
            Err(DpzError::Corrupt("dims overflow"))
        ));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(compress_chunked(&[1.0, 2.0], &[3], &DpzConfig::loose(), 2).is_err());
        assert!(compress_chunked(&[1.0], &[1], &DpzConfig::loose(), 2).is_err());
        assert!(compress_progressive(&[1.0, 2.0], &[3], &DpzConfig::loose(), 2).is_err());
    }
}
