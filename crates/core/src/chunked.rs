//! Chunked parallel compression — the scalability extension the paper lists
//! as future work ("we plan to expand the DPZ algorithm to exploit
//! parallelism for better scalability").
//!
//! The array is split into slabs along its slowest axis; each slab is an
//! independent DPZ stream compressed on a rayon worker. Benefits:
//!
//! * near-linear multi-core compression scaling (each slab runs the full
//!   DCT→PCA→quantize pipeline independently),
//! * slab-granular **random access**: [`decompress_chunk`] decodes one slab
//!   without touching the rest,
//! * bounded memory: the `M×M` covariance is per-slab.
//!
//! The cost is a per-slab model (basis + means), so very small slabs trade
//! ratio for parallelism; 4–16 slabs is a good range at the default scales.
//!
//! Container: `magic "DPZC" | version u8 | ndims u8 | dims u64×ndims
//! | chunk count u64 | chunk byte lengths u64×count
//! | chunk crc32 u32×count (version ≥ 2) | streams…`.
//!
//! Version 2 inserts a CRC-32 column (one checksum per chunk stream) between
//! the length directory and the payload, so slab corruption is caught before
//! the inner DPZ decoder runs. Version-1 containers still decode;
//! [`decompress_chunked_with_info`] reports which form was seen.

use crate::config::DpzConfig;
use crate::container::{checked_product, ContainerInfo, DpzError};
use crate::pipeline::{decompress, Compressed, PipelinePlan};
use crate::stage::BufferPool;
use dpz_deflate::crc32;
use dpz_telemetry::span;
use rayon::prelude::*;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DPZC";
/// Current writer version (per-chunk CRC-32 column).
const VERSION: u8 = 2;
/// Oldest version the decoder still accepts (pre-checksum layout).
const MIN_VERSION: u8 = 1;

/// Result of a chunked compression.
#[derive(Debug, Clone)]
pub struct ChunkedCompressed {
    /// The multi-chunk container.
    pub bytes: Vec<u8>,
    /// Per-chunk stats from the inner pipeline.
    pub chunk_stats: Vec<crate::pipeline::CompressionStats>,
    /// End-to-end ratio (original bytes / container bytes).
    pub cr_total: f64,
}

/// Slab geometry along the slowest axis: `(rows_per_slab, values_per_row)`.
fn slab_extents(dims: &[usize], chunks: usize) -> (usize, usize) {
    let slow = dims[0];
    let rest: usize = dims[1..].iter().product::<usize>().max(1);
    let rows_per_slab = slow.div_ceil(chunks.clamp(1, slow));
    (rows_per_slab, rest)
}

/// Compress `data` as `chunks` independent slabs (in parallel).
///
/// Each slab must still be large enough to decompose (≥ 2 values); `chunks`
/// is clamped accordingly.
pub fn compress_chunked(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    chunks: usize,
) -> Result<ChunkedCompressed, DpzError> {
    if dims.is_empty() || checked_product(dims, "dims overflow").ok() != Some(data.len()) {
        return Err(DpzError::BadInput("dims do not match data length"));
    }
    if data.len() < 4 {
        return Err(DpzError::BadInput("too small to chunk"));
    }
    let _root = span!("compress_chunked");
    let (rows_per_slab, rest) = slab_extents(dims, chunks);
    let slab_values = rows_per_slab * rest;

    // The chunked driver is the plain pipeline's stage graph executed once
    // per slab: at most two distinct slab lengths exist (full slabs and a
    // ragged tail), so two shared plans cover every chunk, and one shared
    // pool recycles the block-matrix scratch across rayon workers.
    let pool = Arc::new(BufferPool::new());
    let full_plan = PipelinePlan::with_pool(slab_values, cfg, Arc::clone(&pool))?;
    let tail_len = data.len() % slab_values;
    let tail_plan = match tail_len {
        0 => None,
        l => Some(PipelinePlan::with_pool(l, cfg, Arc::clone(&pool))?),
    };

    // Two-phase pipelined execution: each slab's numeric stages
    // (DCT → PCA → quantize, via `PipelinePlan::project`) and its entropy
    // coding (`PipelinePlan::encode`) are separate tasks. Slabs are taken
    // in waves of one pool's width; `rayon::join` runs wave `w`'s entropy
    // coding concurrently with wave `w+1`'s numeric stages, so the DEFLATE
    // or tANS work of finished slabs overlaps the transform math of later
    // ones instead of serializing behind it. At most two waves of numeric
    // outcomes are ever alive — the bounded in-flight queue that keeps
    // memory proportional to the pool width, not the chunk count.
    // Each chunk's bytes come from the same project+encode pair `execute`
    // runs, in chunk order, so the container is byte-identical to the
    // sequential driver's.
    let project_one = |(index, chunk): (usize, &[f32])| {
        let mut chunk_span = dpz_telemetry::span::span("chunk");
        chunk_span.annotate("chunk", index as f64);
        chunk_span.annotate("bytes", (chunk.len() * 4) as f64);
        let rows = chunk.len() / rest;
        let mut slab_dims = dims.to_vec();
        slab_dims[0] = rows;
        let plan = if chunk.len() == slab_values {
            &full_plan
        } else {
            tail_plan.as_ref().expect("ragged tail was planned")
        };
        plan.project(chunk, &slab_dims)
    };
    let encode_wave = |outcomes: Vec<crate::pipeline::NumericOutcome>| -> Vec<Compressed> {
        outcomes
            .into_par_iter()
            .map(|o| full_plan.encode(o))
            .collect()
    };

    let slabs: Vec<(usize, &[f32])> = data.chunks(slab_values).enumerate().collect();
    let wave = rayon::current_num_threads().max(1);
    let mut streams = Vec::with_capacity(slabs.len());
    let mut chunk_stats = Vec::with_capacity(slabs.len());
    let mut pending: Option<Vec<crate::pipeline::NumericOutcome>> = None;
    for wave_slabs in slabs.chunks(wave) {
        let (encoded, projected) = rayon::join(
            || pending.take().map(&encode_wave),
            || {
                wave_slabs
                    .par_iter()
                    .map(|&s| project_one(s))
                    .collect::<Vec<Result<_, DpzError>>>()
            },
        );
        for c in encoded.into_iter().flatten() {
            streams.push(c.bytes);
            chunk_stats.push(c.stats);
        }
        let mut wave_outcomes = Vec::with_capacity(projected.len());
        for r in projected {
            wave_outcomes.push(r?);
        }
        pending = Some(wave_outcomes);
    }
    for c in pending.take().map(&encode_wave).into_iter().flatten() {
        streams.push(c.bytes);
        chunk_stats.push(c.stats);
    }

    let out = assemble(dims, &streams, VERSION);
    let cr_total = (data.len() * 4) as f64 / out.len() as f64;
    dpz_telemetry::global()
        .counter("dpz_chunks_total")
        .add(streams.len() as u64);
    Ok(ChunkedCompressed {
        bytes: out,
        chunk_stats,
        cr_total,
    })
}

/// Build the container bytes for a set of chunk streams. `version` controls
/// whether the CRC-32 column is written (≥ 2) or omitted (1, legacy).
fn assemble(dims: &[usize], streams: &[Vec<u8>], version: u8) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(version);
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&(streams.len() as u64).to_le_bytes());
    for s in streams {
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    }
    if version >= 2 {
        for s in streams {
            out.extend_from_slice(&crc32(s).to_le_bytes());
        }
    }
    for s in streams {
        out.extend_from_slice(s);
    }
    out
}

/// Parsed chunk directory.
struct Directory<'a> {
    dims: Vec<usize>,
    /// Byte range of each chunk stream within `payload`.
    ranges: Vec<(usize, usize)>,
    /// Stored per-chunk CRC-32 values (empty for version-1 containers).
    crcs: Vec<u32>,
    payload: &'a [u8],
    info: ContainerInfo,
}

impl Directory<'_> {
    /// Verify the stored CRC of chunk `i` against its payload bytes.
    /// Version-1 directories have no checksums and trivially pass.
    fn check_chunk(&self, i: usize) -> Result<(), DpzError> {
        if let Some(&stored) = self.crcs.get(i) {
            let (lo, hi) = self.ranges[i];
            if crc32(&self.payload[lo..hi]) != stored {
                return Err(DpzError::Corrupt("chunk checksum mismatch"));
            }
        }
        Ok(())
    }
}

fn parse_directory(bytes: &[u8]) -> Result<Directory<'_>, DpzError> {
    let need = |ok: bool| {
        if ok {
            Ok(())
        } else {
            Err(DpzError::Corrupt("truncated chunk directory"))
        }
    };
    need(bytes.len() >= 6)?;
    if &bytes[..4] != MAGIC {
        return Err(DpzError::Corrupt("bad chunk magic"));
    }
    let version = bytes[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DpzError::Corrupt("unsupported chunk version"));
    }
    let checksummed = version >= 2;
    let ndims = bytes[5] as usize;
    if ndims == 0 || ndims > 8 {
        return Err(DpzError::Corrupt("implausible dimensionality"));
    }
    let mut pos = 6;
    let u64_at = |p: &mut usize| -> Result<usize, DpzError> {
        need(bytes.len() >= p.checked_add(8).ok_or(DpzError::Corrupt("size overflow"))?)?;
        let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().unwrap());
        *p += 8;
        usize::try_from(v).map_err(|_| DpzError::Corrupt("size overflow"))
    };
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(u64_at(&mut pos)?);
    }
    // Validate the dims product up front (checked: eight huge dims must be a
    // decode error, not a multiply-overflow panic in the stitch step).
    checked_product(&dims, "dims overflow")?;
    let count = u64_at(&mut pos)?;
    if count == 0 || count > 1 << 20 {
        return Err(DpzError::Corrupt("implausible chunk count"));
    }
    let mut lens = Vec::with_capacity(count);
    for _ in 0..count {
        lens.push(u64_at(&mut pos)?);
    }
    let mut crcs = Vec::new();
    if checksummed {
        crcs.reserve(count);
        for _ in 0..count {
            need(bytes.len() >= pos + 4)?;
            crcs.push(u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
    }
    let payload = &bytes[pos..];
    // Checked fold: a directory of near-usize::MAX lengths used to wrap the
    // plain `iter().sum()` and alias a bogus total onto the payload length.
    let total = lens
        .iter()
        .try_fold(0usize, |acc, &l| acc.checked_add(l))
        .ok_or(DpzError::Corrupt("chunk lengths overflow"))?;
    if total != payload.len() {
        return Err(DpzError::Corrupt("chunk payload length mismatch"));
    }
    let mut ranges = Vec::with_capacity(count);
    let mut offset = 0;
    for len in lens {
        ranges.push((offset, offset + len));
        offset += len;
    }
    Ok(Directory {
        dims,
        ranges,
        crcs,
        payload,
        info: ContainerInfo {
            version,
            checksummed,
            // Describes the outer DPZC directory only; each inner DPZ1
            // stream carries its own per-section backend flags.
            tans_sections: 0,
        },
    })
}

/// Decompress a chunked container (chunks in parallel), returning the full
/// array and its dimensions.
pub fn decompress_chunked(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    decompress_chunked_with_info(bytes).map(|(v, dims, _)| (v, dims))
}

/// [`decompress_chunked`] that also reports the container version and
/// checksum status.
pub fn decompress_chunked_with_info(
    bytes: &[u8],
) -> Result<(Vec<f32>, Vec<usize>, ContainerInfo), DpzError> {
    let _root = span!("decompress_chunked");
    let result = (|| {
        let dir = parse_directory(bytes)?;
        for i in 0..dir.ranges.len() {
            dir.check_chunk(i)?;
        }
        let parts: Vec<Result<Vec<f32>, DpzError>> = dir
            .ranges
            .par_iter()
            .map(|&(lo, hi)| decompress(&dir.payload[lo..hi]).map(|(v, _)| v))
            .collect();
        let expected = checked_product(&dir.dims, "dims overflow")?;
        let mut out = Vec::new();
        for p in parts {
            let p = p?;
            if out.len() + p.len() > expected {
                return Err(DpzError::Corrupt("stitched length mismatch"));
            }
            out.extend_from_slice(&p);
        }
        if out.len() != expected {
            return Err(DpzError::Corrupt("stitched length mismatch"));
        }
        Ok((out, dir.dims, dir.info))
    })();
    if result.is_err() {
        dpz_telemetry::global()
            .counter_with("dpz_decode_rejects_total", &[("codec", "dpzc")])
            .inc();
    }
    result
}

/// Number of chunks in a chunked container.
pub fn chunk_count(bytes: &[u8]) -> Result<usize, DpzError> {
    Ok(parse_directory(bytes)?.ranges.len())
}

/// Decompress a single chunk (random access). Returns the slab's values and
/// its dims (slowest axis shrunk to the slab height). Only the requested
/// chunk's checksum is verified — the point of random access.
pub fn decompress_chunk(bytes: &[u8], index: usize) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    let dir = parse_directory(bytes)?;
    let &(lo, hi) = dir
        .ranges
        .get(index)
        .ok_or(DpzError::BadInput("chunk index out of range"))?;
    dir.check_chunk(index)?;
    decompress(&dir.payload[lo..hi])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TveLevel;

    fn field(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (0.05 * r).sin() * 10.0 + (0.04 * c).cos() * 5.0
            })
            .collect()
    }

    #[test]
    fn chunked_round_trip_matches_dims() {
        let data = field(64, 48);
        let cfg = DpzConfig::strict().with_tve(TveLevel::SixNines);
        let out = compress_chunked(&data, &[64, 48], &cfg, 4).unwrap();
        assert_eq!(out.chunk_stats.len(), 4);
        let (recon, dims) = decompress_chunked(&out.bytes).unwrap();
        assert_eq!(dims, vec![64, 48]);
        assert_eq!(recon.len(), data.len());
        // Quality in the same regime as whole-field compression.
        let mse: f64 = data
            .iter()
            .zip(&recon)
            .map(|(a, b)| {
                let d = f64::from(*a) - f64::from(*b);
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < 1.0, "chunked mse {mse}");
    }

    #[test]
    fn uneven_slabs_handled() {
        // 10 rows into 4 chunks -> 3+3+3+1.
        let data = field(10, 40);
        let out = compress_chunked(&data, &[10, 40], &DpzConfig::loose(), 4).unwrap();
        let (recon, dims) = decompress_chunked(&out.bytes).unwrap();
        assert_eq!(dims, vec![10, 40]);
        assert_eq!(recon.len(), 400);
    }

    #[test]
    fn random_access_single_chunk() {
        let data = field(32, 32);
        let out = compress_chunked(&data, &[32, 32], &DpzConfig::loose(), 4).unwrap();
        assert_eq!(chunk_count(&out.bytes).unwrap(), 4);
        let (slab, dims) = decompress_chunk(&out.bytes, 2).unwrap();
        assert_eq!(dims, vec![8, 32]);
        // Chunk 2 covers rows 16..24.
        for (i, v) in slab.iter().enumerate() {
            let expect = data[16 * 32 + i];
            assert!((v - expect).abs() < 0.5, "idx {i}: {v} vs {expect}");
        }
        assert!(decompress_chunk(&out.bytes, 9).is_err());
    }

    #[test]
    fn random_access_last_ragged_chunk_reports_chunk_local_dims() {
        // 10 rows into 4 chunks -> slabs of 3+3+3+1 rows. The final chunk
        // must report its *own* shape ([1, 40]), not the whole-array dims.
        let data = field(10, 40);
        let out = compress_chunked(&data, &[10, 40], &DpzConfig::loose(), 4).unwrap();
        assert_eq!(chunk_count(&out.bytes).unwrap(), 4);
        let (slab, dims) = decompress_chunk(&out.bytes, 3).unwrap();
        assert_eq!(dims, vec![1, 40], "ragged tail must have chunk-local dims");
        assert_eq!(slab.len(), 40);
        for (i, v) in slab.iter().enumerate() {
            let expect = data[9 * 40 + i];
            assert!((v - expect).abs() < 0.5, "idx {i}: {v} vs {expect}");
        }
        // A full-height interior chunk reports its slab shape too.
        let (_, dims) = decompress_chunk(&out.bytes, 1).unwrap();
        assert_eq!(dims, vec![3, 40]);
    }

    #[test]
    fn one_chunk_equals_plain_pipeline() {
        let data = field(16, 16);
        let cfg = DpzConfig::loose();
        let chunked = compress_chunked(&data, &[16, 16], &cfg, 1).unwrap();
        let (a, _) = decompress_chunked(&chunked.bytes).unwrap();
        let plain = crate::pipeline::compress(&data, &[16, 16], &cfg).unwrap();
        let (b, _) = crate::pipeline::decompress(&plain.bytes).unwrap();
        assert_eq!(a, b, "single chunk must reproduce the plain pipeline");
    }

    #[test]
    fn corrupt_directory_rejected() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        assert!(decompress_chunked(&out.bytes[..10]).is_err());
        let mut bad = out.bytes.clone();
        bad[0] = b'X';
        assert!(decompress_chunked(&bad).is_err());
        assert!(decompress_chunked(&[]).is_err());
    }

    /// Re-encode a v2 container as a genuine v1 stream (no CRC column) by
    /// splitting it back into chunk streams and reassembling.
    fn as_v1(bytes: &[u8]) -> Vec<u8> {
        let dir = parse_directory(bytes).unwrap();
        let streams: Vec<Vec<u8>> = dir
            .ranges
            .iter()
            .map(|&(lo, hi)| dir.payload[lo..hi].to_vec())
            .collect();
        assemble(&dir.dims, &streams, 1)
    }

    #[test]
    fn v1_containers_still_decode() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let v1 = as_v1(&out.bytes);
        assert_eq!(v1.len(), out.bytes.len() - 2 * 4); // minus the crc column
        let (a, dims_a, info) = decompress_chunked_with_info(&v1).unwrap();
        assert_eq!(
            info,
            ContainerInfo {
                version: 1,
                checksummed: false,
                tans_sections: 0
            }
        );
        let (b, dims_b, info2) = decompress_chunked_with_info(&out.bytes).unwrap();
        assert_eq!(
            info2,
            ContainerInfo {
                version: 2,
                checksummed: true,
                tans_sections: 0
            }
        );
        assert_eq!(a, b);
        assert_eq!(dims_a, dims_b);
        assert_eq!(chunk_count(&v1).unwrap(), 2);
    }

    #[test]
    fn corrupted_chunk_payload_fails_crc() {
        let data = field(16, 16);
        let out = compress_chunked(&data, &[16, 16], &DpzConfig::loose(), 2).unwrap();
        let mut bad = out.bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // inside the last chunk's stream
        assert!(matches!(
            decompress_chunked(&bad),
            Err(DpzError::Corrupt("chunk checksum mismatch"))
        ));
        // Random access to an *undamaged* chunk still works.
        assert!(decompress_chunk(&bad, 0).is_ok());
        assert!(decompress_chunk(&bad, 1).is_err());
    }

    #[test]
    fn overflowing_chunk_lengths_are_corrupt_not_panic() {
        // Regression: a directory whose lengths sum past usize::MAX used to
        // wrap `lens.iter().sum()` (debug: add-overflow panic; release: a
        // bogus aliased total).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(1); // v1: no crc column needed to reach the sum
        bytes.push(1); // ndims
        bytes.extend_from_slice(&16u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes()); // count
        for _ in 0..3 {
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        assert!(matches!(
            decompress_chunked(&bytes),
            Err(DpzError::Corrupt("chunk lengths overflow"))
        ));
    }

    #[test]
    fn overflowing_dims_are_corrupt_not_panic() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(1);
        bytes.push(8);
        for _ in 0..8 {
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        bytes.extend_from_slice(&1u64.to_le_bytes()); // count
        bytes.extend_from_slice(&0u64.to_le_bytes()); // one empty chunk
        assert!(matches!(
            decompress_chunked(&bytes),
            Err(DpzError::Corrupt("dims overflow"))
        ));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(compress_chunked(&[1.0, 2.0], &[3], &DpzConfig::loose(), 2).is_err());
        assert!(compress_chunked(&[1.0], &[1], &DpzConfig::loose(), 2).is_err());
    }
}
