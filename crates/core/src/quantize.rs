//! Stage 3: uniform symmetric quantization of the retained PCA scores
//! (Section IV-C of the paper).
//!
//! The scores are symmetric around zero (PCA over zero-mean DCT
//! coefficients), so the quantizer covers `[-P·B, +P·B]` with `B` bins of
//! width `2P`: an in-range score becomes its bin index (1 byte for DPZ-l,
//! 2 bytes for DPZ-s; the all-ones index is reserved as the escape code)
//! and reconstructs at the bin center, bounding the per-score error by `P`.
//! Out-of-range scores are stored verbatim as `f32`.

use crate::config::Scheme;

/// Quantized representation of a score matrix (flattened row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedScores {
    /// One index per score; width depends on the scheme. The escape value
    /// (all ones) marks an outlier.
    pub indices: Vec<u8>,
    /// True when indices are 2-byte little-endian.
    pub wide_index: bool,
    /// Out-of-range scores, in scan order.
    pub outliers: Vec<f32>,
    /// Error bound `P` used.
    pub p: f64,
    /// Usable bin count `B`.
    pub bins: u32,
    /// Number of scores.
    pub len: usize,
}

impl QuantizedScores {
    /// Raw (pre-DEFLATE) byte size of indices + outliers.
    pub fn raw_bytes(&self) -> usize {
        self.indices.len() + self.outliers.len() * 4
    }
}

/// Quantize a flat score array under `scheme`.
///
/// The per-score bin mapping (`floor((s + half) / 2P)` with the escape code
/// for non-finite or out-of-range values) runs through the fused
/// `dpz-kernels` quantize kernel; this layer owns the byte-width policy
/// (1-byte vs 2-byte little-endian indices) and the outlier side stream.
pub fn quantize_scores(scores: &[f64], scheme: Scheme) -> QuantizedScores {
    let p = scheme.p();
    assert!(p > 0.0 && p.is_finite(), "quantizer needs a positive P");
    let bins = scheme.bins();
    let wide = scheme.wide_index();
    let escape = bins as u16; // one past the last valid bin index
    let half_range = p * f64::from(bins);

    let mut codes = vec![0u16; scores.len()];
    dpz_kernels::quant::quantize_codes(scores, half_range, p, bins, escape, &mut codes);

    let mut indices = Vec::with_capacity(scores.len() * if wide { 2 } else { 1 });
    let mut outliers = Vec::new();
    if wide {
        for (&code, &s) in codes.iter().zip(scores) {
            if code == escape {
                outliers.push(s as f32);
            }
            indices.extend_from_slice(&code.to_le_bytes());
        }
    } else {
        for (&code, &s) in codes.iter().zip(scores) {
            if code == escape {
                outliers.push(s as f32);
            }
            indices.push(code as u8);
        }
    }
    QuantizedScores {
        indices,
        wide_index: wide,
        outliers,
        p,
        bins,
        len: scores.len(),
    }
}

/// Reconstruct scores from their quantized form.
pub fn dequantize_scores(q: &QuantizedScores) -> Vec<f64> {
    let half_range = q.p * f64::from(q.bins);
    let escape = q.bins as u16;
    let width = if q.wide_index { 2 } else { 1 };
    assert!(
        q.indices.len() >= q.len * width,
        "index stream shorter than declared score count"
    );
    let mut codes = vec![0u16; q.len];
    if q.wide_index {
        for (c, b) in codes.iter_mut().zip(q.indices.chunks_exact(2)) {
            *c = u16::from_le_bytes([b[0], b[1]]);
        }
    } else {
        for (c, &b) in codes.iter_mut().zip(&q.indices) {
            *c = u16::from(b);
        }
    }
    // Bin centers for every lane (-half + (2*code + 1) * P); escape slots are
    // overwritten from the outlier stream below.
    let mut out = vec![0.0; q.len];
    dpz_kernels::quant::dequantize_codes(&codes, half_range, q.p, &mut out);
    let mut outlier_iter = q.outliers.iter();
    for (v, &code) in out.iter_mut().zip(&codes) {
        if code == escape {
            let o = outlier_iter.next().expect("outlier stream exhausted");
            *v = f64::from(*o);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(scores: &[f64], scheme: Scheme) -> QuantizedScores {
        let q = quantize_scores(scores, scheme);
        let back = dequantize_scores(&q);
        assert_eq!(back.len(), scores.len());
        let p = scheme.p();
        for (i, (s, r)) in scores.iter().zip(&back).enumerate() {
            if s.is_finite() {
                let limit = if s.abs() < p * f64::from(scheme.bins()) {
                    p * (1.0 + 1e-9)
                } else {
                    // Outlier: f32 rounding only.
                    (s.abs() * 1e-6).max(1e-30)
                };
                assert!((s - r).abs() <= limit, "idx {i}: {s} -> {r}");
            }
        }
        q
    }

    #[test]
    fn loose_scheme_bound() {
        let scores: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.37).sin() * 0.2)
            .collect();
        let q = check_bound(&scores, Scheme::Loose);
        assert!(!q.wide_index);
        assert_eq!(q.indices.len(), scores.len());
    }

    #[test]
    fn strict_scheme_bound() {
        let scores: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.11).cos() * 5.0)
            .collect();
        let q = check_bound(&scores, Scheme::Strict);
        assert!(q.wide_index);
        assert_eq!(q.indices.len(), scores.len() * 2);
    }

    #[test]
    fn out_of_range_become_outliers() {
        // Loose: half-range = 1e-3 * 255 = 0.255.
        let scores = vec![0.0, 0.1, 0.5, -3.0, 0.2];
        let q = quantize_scores(&scores, Scheme::Loose);
        assert_eq!(q.outliers.len(), 2);
        let back = dequantize_scores(&q);
        assert!((back[2] - 0.5).abs() < 1e-6);
        assert!((back[3] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_values() {
        let p = Scheme::Loose.p();
        let half = p * 255.0;
        // Exactly ±half must escape (strict inequality), just inside must not.
        let scores = vec![half, -half, half - p, -half + p, 0.0];
        let q = quantize_scores(&scores, Scheme::Loose);
        assert_eq!(q.outliers.len(), 2);
        check_bound(&scores, Scheme::Loose);
    }

    #[test]
    fn non_finite_scores_escape() {
        let scores = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.01];
        let q = quantize_scores(&scores, Scheme::Loose);
        assert_eq!(q.outliers.len(), 3);
        let back = dequantize_scores(&q);
        assert!(back[0].is_nan());
        assert!(back[1].is_infinite());
    }

    #[test]
    fn zero_maps_near_zero() {
        // 255 bins: zero is inside a bin whose center is within P of zero.
        let q = quantize_scores(&[0.0], Scheme::Loose);
        let back = dequantize_scores(&q);
        assert!(back[0].abs() <= Scheme::Loose.p());
    }

    #[test]
    fn raw_bytes_accounting() {
        let scores = vec![0.0; 100];
        let q8 = quantize_scores(&scores, Scheme::Loose);
        assert_eq!(q8.raw_bytes(), 100);
        let q16 = quantize_scores(&scores, Scheme::Strict);
        assert_eq!(q16.raw_bytes(), 200);
    }

    #[test]
    fn custom_scheme_wide() {
        let scheme = Scheme::Custom {
            p: 0.01,
            wide_index: true,
        };
        let scores: Vec<f64> = (0..1000).map(|i| (i as f64 - 500.0) * 0.9).collect();
        check_bound(&scores, scheme);
    }

    #[test]
    fn empty_input() {
        let q = quantize_scores(&[], Scheme::Loose);
        assert_eq!(q.len, 0);
        assert!(dequantize_scores(&q).is_empty());
    }
}
