//! The end-to-end DPZ pipeline: compress, decompress, and the instrumented
//! breakdown variant that reports per-stage ratios and accuracy (the data
//! behind Tables III/IV and Figures 8/9 of the paper).
//!
//! Since the stage-graph refactor there is exactly **one** description of
//! the compression chain — the five [`Stage`] impls in this module, composed
//! by [`PipelinePlan`]:
//!
//! ```text
//! stage1.decompose_dct → sampling → stage2.pca → stage3.quantize → lossless
//! ```
//!
//! [`compress`] plans and executes that graph once; the chunked driver
//! ([`crate::chunked`]) executes the same graph once per chunk through
//! shared plans; [`compress_with_breakdown`] executes it with a tap that
//! captures the stage-1 coefficients so per-stage accuracy can be measured
//! without re-deriving any stage body.

use crate::config::{DpzConfig, KSelection, Stage1Transform, Standardize};
use crate::container::{self, ContainerData, ContainerInfo, DpzError, SectionSizes};
use crate::decompose::{self, BlockShape};
use crate::kpca::select_k;
use crate::quantize::{dequantize_scores, quantize_scores, QuantizedScores};
use crate::sampling::{SamplingEstimate, SamplingStrategy};
use crate::stage::{BufferPool, Stage, StageGraph, StageTrace};
use crate::target::{self, QualityTarget, RatioOracle};
use dpz_linalg::{Matrix, Pca, PcaOptions, RangeFinderOptions, SubspaceSeed};
use dpz_telemetry::span;
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock time spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage 1: decomposition + block DCT.
    pub decompose_dct: Duration,
    /// Sampling strategy (zero when disabled).
    pub sampling: Duration,
    /// Stage 2: PCA fit + projection.
    pub pca: Duration,
    /// Stage 3: quantization.
    pub quantize: Duration,
    /// Lossless add-on (DEFLATE of all sections) + container assembly.
    pub lossless: Duration,
}

impl StageTimings {
    /// Total compression time.
    pub fn total(&self) -> Duration {
        self.decompose_dct + self.sampling + self.pca + self.quantize + self.lossless
    }

    fn from_trace(trace: &StageTrace) -> Self {
        StageTimings {
            decompose_dct: trace.duration(STAGE1_NAME),
            sampling: trace.duration(SAMPLING_NAME),
            pca: trace.duration(STAGE2_NAME),
            quantize: trace.duration(STAGE3_NAME),
            lossless: trace.duration(LOSSLESS_NAME),
        }
    }
}

/// Statistics captured during compression.
#[derive(Debug, Clone)]
pub struct CompressionStats {
    /// Block count (PCA features).
    pub m: usize,
    /// Block length (PCA samples).
    pub n: usize,
    /// Retained components.
    pub k: usize,
    /// TVE achieved by the retained components.
    pub tve_achieved: f64,
    /// Whether features were standardized.
    pub standardized: bool,
    /// Per-stage wall-clock.
    pub timings: StageTimings,
    /// Raw/packed sizes per container section.
    pub sections: SectionSizes,
    /// Stage-1&2 ratio: original bytes over the f32 core (scores+basis+means).
    pub cr_stage12: f64,
    /// Stage-3 ratio: f32 core over quantized sections (pre-DEFLATE).
    pub cr_stage3: f64,
    /// Lossless ratio: pre-DEFLATE over post-DEFLATE bytes.
    pub cr_zlib: f64,
    /// End-to-end ratio: original bytes over the final container.
    pub cr_total: f64,
    /// Sampling estimate when the strategy ran.
    pub sampling: Option<SamplingEstimate>,
    /// Whether the emitted container carries per-section CRC-32 trailers
    /// (true for the current version-2 writer).
    pub checksummed: bool,
}

/// Output of [`compress`].
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The self-describing DPZ container.
    pub bytes: Vec<u8>,
    /// Instrumentation.
    pub stats: CompressionStats,
}

/// Minimum and range of the data, with a range floor of 1 so constant
/// fields normalize to zero instead of dividing by zero.
pub(crate) fn value_extent(data: &[f32]) -> (f64, f64) {
    let (lo, hi) = data
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(f64::from(v)), hi.max(f64::from(v)))
        });
    let range = hi - lo;
    (lo, if range > 0.0 { range } else { 1.0 })
}

/// Validate and flatten-check the input.
fn check_input(data: &[f32], dims: &[usize]) -> Result<(), DpzError> {
    if data.len() < 2 {
        return Err(DpzError::BadInput("need at least two values"));
    }
    if dims.is_empty() || dims.iter().product::<usize>() != data.len() {
        return Err(DpzError::BadInput("dims do not match data length"));
    }
    if data.iter().any(|v| !v.is_finite()) {
        // A NaN poisons the DCT of its whole block and the PCA covariance;
        // the paper's datasets are finite, so reject early and loudly.
        return Err(DpzError::BadInput("non-finite values are not supported"));
    }
    Ok(())
}

// Stage names double as telemetry span names and StageTrace keys; the
// chunked driver and telemetry tests rely on them, so they are constants.
const STAGE1_NAME: &str = "stage1.decompose_dct";
const SAMPLING_NAME: &str = "sampling";
const STAGE2_NAME: &str = "stage2.pca";
const STAGE3_NAME: &str = "stage3.quantize";
const LOSSLESS_NAME: &str = "lossless";

/// Fixed randomized range-finder configuration shared by every fit the
/// pipeline routes through the sketched path. The seed is a compile-time
/// constant so artifacts are deterministic across runs, thread counts, and
/// kernel backends — the probe stream never depends on anything ambient.
/// Oversampling is tighter than the library default: every product in the
/// fit scales with the sketch width, and the one power iteration plus the
/// conservative Ritz-TVE rank selection already absorb the accuracy the
/// extra probes would buy.
pub(crate) const RF_OPTS: RangeFinderOptions = RangeFinderOptions {
    oversample: 8,
    power_iters: 1,
    seed: 0x5EED_0D12_F00D_CAFE,
};

/// Below this feature count the sketched path cannot beat the dense
/// solvers: the sketch width (k + oversample) stops being ≪ M and the
/// range-finder's own orthogonalization dominates.
pub(crate) const RANDOMIZED_MIN_M: usize = 64;

/// Crossover policy for a rank-bounded PCA fit: randomized range-finder
/// when the sketch stays well below M, subspace iteration when the rank is
/// still small-ish, full decomposition otherwise. Shared by the stage-2
/// routing and the combo graphs so every rank-bounded fit in the codebase
/// obeys one policy.
///
/// Returns the fit plus the converged sketch basis, whether a
/// caller-provided warm seed actually survived the TVE gate, and the
/// sketch-derived score matrix (randomized path only — recovered from the
/// range-finder's own products, so stage 2 can skip the explicit
/// projection).
pub(crate) fn fit_for_rank(
    coeffs: &Matrix,
    opts: PcaOptions,
    want: usize,
    m: usize,
    warm: Option<&SubspaceSeed>,
    gate_tve: Option<f64>,
) -> Result<(Pca, Option<SubspaceSeed>, bool, Option<Matrix>), DpzError> {
    let sketch = want + RF_OPTS.oversample;
    if m >= RANDOMIZED_MIN_M && sketch * 4 < m {
        let fit = Pca::fit_randomized_warm(coeffs, opts, want, &RF_OPTS, warm, gate_tve)?;
        Ok((fit.pca, Some(fit.basis), fit.warm_used, fit.scores))
    } else if want * 6 < m {
        // Measured crossover with the SIMD GEMM backend: subspace iteration
        // at the fit_truncated budget beats the direct solver up to roughly
        // k = M/6.
        Ok((Pca::fit_truncated(coeffs, opts, want)?, None, false, None))
    } else {
        Ok((Pca::fit(coeffs, opts)?, None, false, None))
    }
}

/// Telemetry for the stage-2 solver routing: how often the randomized path
/// runs, and whether offered warm seeds survive the TVE gate or fall back
/// to a cold fit.
fn record_pca_route(randomized: bool, warm_offered: bool, warm_used: bool) {
    let reg = dpz_telemetry::global();
    if randomized {
        reg.counter("dpz_pca_randomized_total").inc();
    }
    if warm_offered {
        if warm_used {
            reg.counter("dpz_pca_warm_hits_total").inc();
        } else {
            reg.counter("dpz_pca_warm_cold_fallbacks_total").inc();
        }
    }
}

/// Mutable state threaded through the compression stage graph: the input
/// (borrowed), the planned shape, and each stage's product.
struct PipelineCtx<'a> {
    // Input + plan (read-only for stages).
    data: &'a [f32],
    dims: &'a [usize],
    cfg: &'a DpzConfig,
    shape: BlockShape,
    transform_tag: u8,
    dwt_levels: u8,
    pool: &'a BufferPool,
    // Stage products.
    norm_min: f64,
    norm_range: f64,
    coeffs: Option<Matrix>,
    sampling_est: Option<SamplingEstimate>,
    standardize: bool,
    pca: Option<Pca>,
    k: usize,
    tve_achieved: f64,
    scores: Option<Matrix>,
    quantized: Option<QuantizedScores>,
    n_outliers: usize,
    // Cross-chunk basis handoff: a converged sketch basis from a previous
    // statistically-similar buffer seeds this fit (TVE-gated inside the
    // fitter), and the basis this fit converged to flows out for the next.
    warm_in: Option<&'a SubspaceSeed>,
    warm_out: Option<SubspaceSeed>,
}

/// Stage 1: range normalization, decomposition + block transform.
///
/// Normalizing the flattened data to [-0.5, 0.5] (DCTZ heritage) makes the
/// stage-3 error bound P range-relative, exactly like the paper's θ metric —
/// without it, large-magnitude fields (e.g. HACC velocities) would overflow
/// the quantizer range and escape every score as an outlier.
struct Stage1Decompose;

impl<'a> Stage<PipelineCtx<'a>> for Stage1Decompose {
    fn name(&self) -> &'static str {
        STAGE1_NAME
    }

    fn execute(&self, ctx: &mut PipelineCtx<'a>) -> Result<(), DpzError> {
        let (norm_min, norm_range) = value_extent(ctx.data);
        ctx.norm_min = norm_min;
        ctx.norm_range = norm_range;
        let storage = ctx.pool.acquire(ctx.shape.m * ctx.shape.n);
        let coeffs = match ctx.transform_tag {
            1 => {
                let mut blocks = decompose::to_blocks_in(ctx.data, ctx.shape, storage);
                for v in blocks.as_mut_slice() {
                    *v = (*v - norm_min) / norm_range - 0.5;
                }
                let coeffs = decompose::dwt_blocks(&blocks, ctx.dwt_levels as usize);
                ctx.pool.release(blocks.into_vec());
                coeffs
            }
            _ => {
                // Fused path: normalize + block + DCT + single transpose.
                let (coeffs, scratch) = decompose::dct_blocks_from_raw(
                    ctx.data, ctx.shape, norm_min, norm_range, storage,
                );
                ctx.pool.release(scratch);
                coeffs
            }
        };
        ctx.coeffs = Some(coeffs);
        Ok(())
    }

    fn trace_args(&self, ctx: &PipelineCtx<'a>) -> Vec<(&'static str, f64)> {
        // Coefficient matrix: the pipeline's largest transient buffer.
        vec![
            ("bytes", (ctx.shape.m * ctx.shape.n * 8) as f64),
            ("blocks", ctx.shape.m as f64),
        ]
    }
}

/// Sampling strategy (optional): Algorithm 2's VIF probe + subset-k
/// estimate, feeding both the truncated-solver routing in stage 2 and the
/// predicted-ratio telemetry.
struct SamplingStage;

impl<'a> Stage<PipelineCtx<'a>> for SamplingStage {
    fn name(&self) -> &'static str {
        SAMPLING_NAME
    }

    fn execute(&self, ctx: &mut PipelineCtx<'a>) -> Result<(), DpzError> {
        if !ctx.cfg.sampling {
            return Ok(());
        }
        let tve = match ctx.cfg.selection {
            KSelection::Tve(v) => v,
            _ => SamplingStrategy::default().tve,
        };
        let strat = SamplingStrategy {
            subsets: ctx.cfg.sampling_subsets,
            picks: ctx.cfg.sampling_picks,
            vif_sample_rate: ctx.cfg.vif_sample_rate,
            tve,
        };
        let coeffs = ctx.coeffs.as_ref().expect("stage 1 ran");
        ctx.sampling_est = Some(strat.estimate(coeffs)?);
        Ok(())
    }

    fn trace_args(&self, ctx: &PipelineCtx<'a>) -> Vec<(&'static str, f64)> {
        match &ctx.sampling_est {
            Some(est) => vec![("k_estimate", est.k_estimate as f64)],
            None => Vec::new(),
        }
    }
}

/// Stage 2: PCA (full, or truncated when sampling provided k_e), k
/// selection, and projection to scores.
struct Stage2Pca;

impl<'a> Stage<PipelineCtx<'a>> for Stage2Pca {
    fn name(&self) -> &'static str {
        STAGE2_NAME
    }

    fn execute(&self, ctx: &mut PipelineCtx<'a>) -> Result<(), DpzError> {
        let cfg = ctx.cfg;
        let shape = ctx.shape;
        let standardize = match cfg.standardize {
            Standardize::On => true,
            Standardize::Off => false,
            Standardize::Auto => ctx.sampling_est.as_ref().is_some_and(|e| e.low_linearity),
        };
        ctx.standardize = standardize;
        let coeffs = ctx.coeffs.take().expect("stage 1 ran");
        let opts = PcaOptions { standardize };
        let warm_in = ctx.warm_in;
        let (pca, choice, sketch_scores) = match (&ctx.sampling_est, cfg.selection) {
            // A saturated estimate (subset k pinned at the subset width) is only
            // a lower bound on the true k; using it would silently degrade
            // quality, so fall through to the full path instead.
            (Some(est), KSelection::Tve(tve)) if !est.saturated => {
                // Fast path: k comes from the sample; fit only k_e (+ margin)
                // components through the crossover policy, gating any warm
                // seed against the configured TVE target.
                let k_e = est.k_estimate;
                let margin = (k_e / 4).max(2);
                let want = (k_e + margin).min(shape.m);
                let (pca, basis, warm_used, scores) =
                    fit_for_rank(&coeffs, opts, want, shape.m, warm_in, Some(tve))?;
                record_pca_route(basis.is_some(), warm_in.is_some(), warm_used);
                ctx.warm_out = basis;
                let choice = select_k(&pca, KSelection::Fixed(k_e));
                (pca, choice, scores)
            }
            // No sampling estimate, but the selection mode itself bounds the
            // needed rank: route through the rank-bounded solvers instead of
            // the full O(M³) decomposition whenever the bound is far below M.
            (_, KSelection::Fixed(k_fixed)) => {
                let want = (k_fixed + (k_fixed / 4).max(2)).min(shape.m);
                let (pca, basis, warm_used, scores) =
                    fit_for_rank(&coeffs, opts, want, shape.m, warm_in, None)?;
                record_pca_route(basis.is_some(), warm_in.is_some(), warm_used);
                ctx.warm_out = basis;
                let choice = select_k(&pca, cfg.selection);
                (pca, choice, scores)
            }
            (_, KSelection::Tve(tve)) => {
                // The randomized range-finder sketches k0 + oversample probe
                // vectors directly on the data matrix — no M×M Gram, no
                // Householder reduction — then escalates the sketch until the
                // Ritz spectrum certifies the TVE target (the Ritz TVE is
                // exact for the produced basis, so the certificate is sound).
                // Tiny M cannot amortize the sketch; keep the exact solver.
                let (pca, scores) = if shape.m >= RANDOMIZED_MIN_M {
                    let k0 = (shape.m / 8).max(8);
                    let fit = Pca::fit_tve_randomized(&coeffs, opts, tve, k0, &RF_OPTS, warm_in)?;
                    record_pca_route(true, warm_in.is_some(), fit.warm_used);
                    ctx.warm_out = Some(fit.basis);
                    (fit.pca, fit.scores)
                } else {
                    (Pca::fit_tve_exact(&coeffs, opts, tve)?, None)
                };
                let choice = select_k(&pca, cfg.selection);
                (pca, choice, scores)
            }
            // Knee-point detection inspects the whole spectrum.
            _ => {
                let pca = Pca::fit(&coeffs, opts)?;
                let choice = select_k(&pca, cfg.selection);
                (pca, choice, None)
            }
        };
        ctx.k = choice.k;
        ctx.tve_achieved = choice.tve_achieved;
        // The randomized fitter already produced the projected scores from
        // its own sketch products; reuse them (trimmed to the selected
        // rank) instead of paying the explicit n·m·k projection again.
        ctx.scores = Some(match sketch_scores {
            Some(s) if s.cols() == choice.k => s,
            Some(s) if s.cols() > choice.k => s.leading_cols(choice.k),
            _ => pca.transform(&coeffs, choice.k)?,
        });
        ctx.pool.release(coeffs.into_vec());
        ctx.pca = Some(pca);
        Ok(())
    }

    fn trace_args(&self, ctx: &PipelineCtx<'a>) -> Vec<(&'static str, f64)> {
        // Score matrix size: what stage 3 will quantize.
        vec![
            ("k", ctx.k as f64),
            ("bytes", (ctx.shape.n * ctx.k * 8) as f64),
        ]
    }
}

/// Stage 3: uniform symmetric quantization of the scores.
struct Stage3Quantize;

impl<'a> Stage<PipelineCtx<'a>> for Stage3Quantize {
    fn name(&self) -> &'static str {
        STAGE3_NAME
    }

    fn execute(&self, ctx: &mut PipelineCtx<'a>) -> Result<(), DpzError> {
        let scores = ctx.scores.take().expect("stage 2 ran");
        // The plan validated the config, so a static bound is guaranteed
        // here; the error path survives as a defensive check.
        let scheme = ctx.cfg.resolved_scheme()?;
        let quantized = quantize_scores(scores.as_slice(), scheme);
        ctx.pool.release(scores.into_vec());
        ctx.n_outliers = quantized.outliers.len();
        ctx.quantized = Some(quantized);
        Ok(())
    }

    fn trace_args(&self, ctx: &PipelineCtx<'a>) -> Vec<(&'static str, f64)> {
        vec![("outliers", ctx.n_outliers as f64)]
    }
}

/// Model rounding: f32-round the PCA projection/means/scales and gather
/// everything the container must persist. This closes the numeric phase —
/// what follows (entropy coding) touches only bytes.
fn assemble_payload(ctx: &mut PipelineCtx<'_>) -> ContainerData {
    let pca = ctx.pca.as_ref().expect("stage 2 ran");
    let k = ctx.k;
    let projection = pca.projection(k);
    let basis: Vec<f32> = projection.as_slice().iter().map(|&v| v as f32).collect();
    let mean: Vec<f32> = pca.mean().iter().map(|&v| v as f32).collect();
    let scale: Vec<f32> = pca
        .feature_scale()
        .map(|s| s.iter().map(|&v| v as f32).collect())
        .unwrap_or_default();
    let scores = ctx.quantized.take().expect("stage 3 ran");
    ContainerData {
        dims: ctx.dims.to_vec(),
        orig_len: ctx.data.len(),
        m: ctx.shape.m,
        n: ctx.shape.n,
        pad: ctx.shape.pad,
        norm_min: ctx.norm_min,
        norm_range: ctx.norm_range,
        k,
        transform_tag: ctx.transform_tag,
        dwt_levels: ctx.dwt_levels,
        p: scores.p,
        standardized: ctx.standardize,
        basis,
        mean,
        scale,
        scores,
    }
}

/// Everything stages 1–3 produce for one buffer, ready for entropy coding.
///
/// The numeric/lossless split exists so the chunked driver can overlap
/// chunk `i`'s entropy coding with chunk `i+1`'s DCT/PCA on the same
/// thread pool — see [`crate::chunked::compress_chunked`]. Feed it to
/// [`PipelinePlan::encode`]; the pair is exactly equivalent to
/// [`PipelinePlan::execute`].
pub struct NumericOutcome {
    payload: ContainerData,
    timings: StageTimings,
    tve_achieved: f64,
    sampling_est: Option<SamplingEstimate>,
    n_outliers: usize,
    orig_bytes: usize,
}

impl NumericOutcome {
    /// Hand the stage-1–3 payload to an alternative entropy coder — the
    /// chunked driver's progressive writer serializes it per-component
    /// instead of through [`PipelinePlan::encode`].
    pub(crate) fn into_payload(self) -> ContainerData {
        self.payload
    }
}

/// A planned compression: shape and transform resolved once for a given
/// `(length, config)`, executable against any number of equal-length
/// buffers. Scratch storage is recycled through a shared [`BufferPool`], so
/// repeated executions — one per chunk in the chunked driver, one per frame
/// in a streaming caller — reach steady state without per-buffer
/// allocation of the block matrix.
pub struct PipelinePlan {
    cfg: DpzConfig,
    len: usize,
    shape: BlockShape,
    transform_tag: u8,
    dwt_levels: u8,
    pool: Arc<BufferPool>,
}

impl PipelinePlan {
    /// Plan a compression of `len` values under `cfg`, with a private
    /// buffer pool.
    pub fn new(len: usize, cfg: &DpzConfig) -> Result<Self, DpzError> {
        Self::with_pool(len, cfg, Arc::new(BufferPool::new()))
    }

    /// [`PipelinePlan::new`] with a caller-provided pool, so several plans
    /// (e.g. the chunked driver's full-slab and ragged-tail plans) share
    /// one free-list.
    pub fn with_pool(len: usize, cfg: &DpzConfig, pool: Arc<BufferPool>) -> Result<Self, DpzError> {
        if len < 2 {
            return Err(DpzError::BadInput("need at least two values"));
        }
        // Validate up front: bad bounds are typed errors here, and
        // data-dependent targets (`Ratio` / `Psnr`) must already have been
        // resolved by `compress`'s control loop before a plan exists.
        cfg.resolved_scheme()?;
        let shape = decompose::choose_shape(len);
        let (transform_tag, dwt_levels) = match cfg.transform {
            Stage1Transform::Dct => (0u8, 0u8),
            Stage1Transform::Dwt { levels } => {
                (1u8, decompose::effective_dwt_levels(shape.n, levels) as u8)
            }
        };
        Ok(PipelinePlan {
            cfg: *cfg,
            len,
            shape,
            transform_tag,
            dwt_levels,
            pool,
        })
    }

    /// The block shape this plan resolved.
    pub fn shape(&self) -> BlockShape {
        self.shape
    }

    /// Planned input length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan is for an empty input (never true: planning
    /// requires at least two values).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stage names of the compression graph, in execution order.
    pub fn stage_names() -> [&'static str; 5] {
        [
            STAGE1_NAME,
            SAMPLING_NAME,
            STAGE2_NAME,
            STAGE3_NAME,
            LOSSLESS_NAME,
        ]
    }

    /// Execute the plan against one buffer. `data.len()` must equal the
    /// planned length and `dims` must describe it. Equivalent to
    /// [`PipelinePlan::project`] followed by [`PipelinePlan::encode`].
    pub fn execute(&self, data: &[f32], dims: &[usize]) -> Result<Compressed, DpzError> {
        let mut root = span!("compress");
        root.annotate("bytes", (data.len() * 4) as f64);
        let (outcome, _, _) = self.project_inner(data, dims, false, None)?;
        Ok(self.encode(outcome))
    }

    /// Run the numeric phase only — stages 1–3 plus model rounding — and
    /// return the artifacts the entropy coder needs. The chunked driver
    /// uses this to overlap one slab's [`PipelinePlan::encode`] with the
    /// next slab's numeric stages.
    pub fn project(&self, data: &[f32], dims: &[usize]) -> Result<NumericOutcome, DpzError> {
        self.project_inner(data, dims, false, None)
            .map(|(o, _, _)| o)
    }

    /// [`PipelinePlan::project`] with a cross-buffer basis handoff: `warm`
    /// seeds this buffer's PCA sketch (the fitter's TVE gate rejects it if
    /// the data drifted), and the converged basis comes back for the next
    /// statistically-similar buffer. Returns `None` for the basis when the
    /// routing took a dense path (small M, knee-point selection, …).
    pub fn project_warm(
        &self,
        data: &[f32],
        dims: &[usize],
        warm: Option<&SubspaceSeed>,
    ) -> Result<(NumericOutcome, Option<SubspaceSeed>), DpzError> {
        self.project_inner(data, dims, false, warm)
            .map(|(o, _, basis)| (o, basis))
    }

    /// [`PipelinePlan::project`] that additionally captures the stage-1
    /// coefficient matrix via a graph tap (for breakdown analyses).
    fn project_inner(
        &self,
        data: &[f32],
        dims: &[usize],
        capture_coeffs: bool,
        warm: Option<&SubspaceSeed>,
    ) -> Result<(NumericOutcome, Option<Matrix>, Option<SubspaceSeed>), DpzError> {
        check_input(data, dims)?;
        if data.len() != self.len {
            return Err(DpzError::BadInput("data length does not match plan"));
        }

        let graph: StageGraph<PipelineCtx> = StageGraph::new()
            .then(Stage1Decompose)
            .then(SamplingStage)
            .then(Stage2Pca)
            .then(Stage3Quantize);
        let mut ctx = PipelineCtx {
            data,
            dims,
            cfg: &self.cfg,
            shape: self.shape,
            transform_tag: self.transform_tag,
            dwt_levels: self.dwt_levels,
            pool: &self.pool,
            norm_min: 0.0,
            norm_range: 1.0,
            coeffs: None,
            sampling_est: None,
            standardize: false,
            pca: None,
            k: 0,
            tve_achieved: 0.0,
            scores: None,
            quantized: None,
            n_outliers: 0,
            warm_in: warm,
            warm_out: None,
        };
        let mut captured = None;
        let trace = graph.run_with_tap(&mut ctx, |name, c| {
            if capture_coeffs && name == STAGE1_NAME {
                captured = c.coeffs.clone();
            }
        })?;

        let payload = assemble_payload(&mut ctx);
        let outcome = NumericOutcome {
            payload,
            timings: StageTimings::from_trace(&trace),
            tve_achieved: ctx.tve_achieved,
            sampling_est: ctx.sampling_est.take(),
            n_outliers: ctx.n_outliers,
            orig_bytes: data.len() * 4,
        };
        let basis = ctx.warm_out.take();
        Ok((outcome, captured, basis))
    }

    /// Entropy-code a numeric outcome into the final container (the
    /// lossless stage), producing byte-for-byte the same stream
    /// [`PipelinePlan::execute`] would have.
    pub fn encode(&self, outcome: NumericOutcome) -> Compressed {
        let NumericOutcome {
            payload,
            mut timings,
            tve_achieved,
            sampling_est,
            n_outliers,
            orig_bytes,
        } = outcome;
        let mut span = dpz_telemetry::span::span(LOSSLESS_NAME);
        let start = std::time::Instant::now();
        let (bytes, sections) = container::serialize_with_backend(&payload, self.cfg.lossless);
        timings.lossless = start.elapsed();
        span.annotate("bytes", bytes.len() as f64);
        drop(span);

        let (m, n, k, standardize) = (payload.m, payload.n, payload.k, payload.standardized);
        // Per-stage ratio accounting (Table III semantics):
        //   stage 1&2 : original f32 -> f32 core (scores + basis + means[+scales])
        //   stage 3   : f32 core -> quantized sections (indices + outliers + model)
        //   zlib      : quantized sections -> entropy-coded output
        let core_f32 = (n * k + m * k + m + if standardize { m } else { 0 }) * 4;
        let stage3_raw = sections.total_raw();
        let cr_stage12 = orig_bytes as f64 / core_f32 as f64;
        let cr_stage3 = core_f32 as f64 / stage3_raw as f64;
        let cr_zlib = stage3_raw as f64 / sections.total_packed() as f64;
        let cr_total = orig_bytes as f64 / bytes.len() as f64;

        let stats = CompressionStats {
            m,
            n,
            k,
            tve_achieved,
            standardized: standardize,
            timings,
            sections,
            cr_stage12,
            cr_stage3,
            cr_zlib,
            cr_total,
            sampling: sampling_est,
            checksummed: true,
        };
        record_compress_metrics(&stats, orig_bytes, bytes.len(), n_outliers);
        Compressed { bytes, stats }
    }
}

/// Compress `data` (shape `dims`) under `cfg`.
///
/// Static targets (`ErrorBound` / `RelBound`) plan once and execute the
/// stage graph once; callers compressing many equal-length buffers should
/// hold a [`PipelinePlan`] instead and amortize the planning + scratch
/// allocation. The control targets run their resolution loop first:
///
/// * [`QualityTarget::Ratio`] — FRaZ-style bound search against the
///   [`RatioOracle`] (≤ [`target::MAX_ORACLE_PROBES`] oracle calls),
///   confirmed against the real artifact with one corrective, calibrated
///   re-search allowed before failing typed.
/// * [`QualityTarget::Psnr`] — closed-form bound, validated post-hoc
///   against the real roundtrip with bounded tighten-and-retry.
pub fn compress(data: &[f32], dims: &[usize], cfg: &DpzConfig) -> Result<Compressed, DpzError> {
    check_input(data, dims)?;
    cfg.target.validate()?;
    match cfg.target {
        QualityTarget::Ratio { target, tol } => compress_fixed_ratio(data, dims, cfg, target, tol),
        QualityTarget::Psnr(db) => compress_fixed_psnr(data, dims, cfg, db),
        _ => PipelinePlan::new(data.len(), cfg)?.execute(data, dims),
    }
}

/// Bounded retries of the post-hoc PSNR validation loop.
const MAX_PSNR_ATTEMPTS: u32 = 3;

/// Acceptance slack for fixed-PSNR mode: the final artifact may sit this
/// far (dB) under the request before the mode fails typed.
pub const PSNR_SLACK_DB: f64 = 0.5;

/// Fixed-ratio control loop: search the bound space against the sampling
/// oracle, compress once, and — if the real ratio misses the band — run one
/// calibrated re-search (oracle scaled by measured/predicted) and one
/// corrective compression before failing typed.
fn compress_fixed_ratio(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    target_cr: f64,
    tol: f64,
) -> Result<Compressed, DpzError> {
    let reg = dpz_telemetry::global();
    let oracle = RatioOracle::build(data, cfg)?;
    let (resolved, res) = target::resolve_ratio(cfg, &oracle, target_cr, tol, 1.0)?;
    let out = PipelinePlan::new(data.len(), &resolved)?.execute(data, dims)?;
    reg.counter_with("dpz_target_confirm_total", &[("mode", "ratio")])
        .inc();
    if target::ratio_within(out.stats.cr_total, target_cr, tol) {
        return Ok(out);
    }

    // The entropy model has dataset-dependent bias (DEFLATE matches, model
    // packing); one measured point calibrates it out.
    let predicted = res.predicted_cr.unwrap_or(out.stats.cr_total).max(1e-9);
    let calibration = out.stats.cr_total / predicted;
    let (resolved2, _) = target::resolve_ratio(cfg, &oracle, target_cr, tol, calibration)?;
    let out2 = PipelinePlan::new(data.len(), &resolved2)?.execute(data, dims)?;
    reg.counter_with("dpz_target_confirm_total", &[("mode", "ratio")])
        .inc();
    let dist = |cr: f64| (cr.max(1e-12) / target_cr).ln().abs();
    let best = if dist(out2.stats.cr_total) <= dist(out.stats.cr_total) {
        out2
    } else {
        out
    };
    if target::ratio_within(best.stats.cr_total, target_cr, tol) {
        Ok(best)
    } else {
        Err(DpzError::TargetUnreachable {
            requested: target_cr,
            achievable: best.stats.cr_total,
        })
    }
}

/// Fixed-PSNR control loop: closed-form bound (with truncation headroom),
/// post-hoc validation against the real roundtrip, and bounded
/// tighten-and-retry (bound ÷ 4, one more TVE nine) when the measurement
/// falls short.
fn compress_fixed_psnr(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
    db: f64,
) -> Result<Compressed, DpzError> {
    let reg = dpz_telemetry::global();
    let (mut resolved, res) = target::resolve_psnr(cfg, db);
    let mut p = res.p;
    let mut best: Option<(Compressed, f64)> = None;
    for attempt in 0..MAX_PSNR_ATTEMPTS {
        let out = PipelinePlan::new(data.len(), &resolved)?.execute(data, dims)?;
        let (recon, _) = decompress(&out.bytes)?;
        let measured = psnr(data, &recon);
        if measured >= db {
            return Ok(out);
        }
        if best.as_ref().is_none_or(|(_, m)| measured > *m) {
            best = Some((out, measured));
        }
        if attempt + 1 < MAX_PSNR_ATTEMPTS {
            reg.counter("dpz_target_psnr_retries_total").inc();
            p *= 0.25;
            resolved = resolved.with_resolved_bound(p);
            resolved.selection = target::tighten_selection_once(resolved.selection);
        }
    }
    let (out, measured) = best.expect("at least one attempt ran");
    if measured >= db - PSNR_SLACK_DB {
        Ok(out)
    } else {
        Err(DpzError::TargetUnreachable {
            requested: db,
            achievable: measured,
        })
    }
}

/// Publish one compression's activity to the global telemetry registry.
/// `CompressionStats` stays the caller-facing view; this mirrors the same
/// numbers into the exportable metric series.
fn record_compress_metrics(
    stats: &CompressionStats,
    orig_bytes: usize,
    out_bytes: usize,
    n_outliers: usize,
) {
    let reg = dpz_telemetry::global();
    let labels = [("codec", "dpz"), ("op", "compress")];
    reg.counter("dpz_compressions_total").inc();
    reg.counter_with("dpz_bytes_in_total", &labels)
        .add(orig_bytes as u64);
    reg.counter_with("dpz_bytes_out_total", &labels)
        .add(out_bytes as u64);
    reg.counter_with("dpz_blocks_total", &[("codec", "dpz")])
        .add(stats.m as u64);
    reg.counter_with("dpz_outliers_total", &[("codec", "dpz")])
        .add(n_outliers as u64);
    reg.gauge("dpz_k_selected").set(stats.k as f64);
    reg.gauge("dpz_tve_achieved").set(stats.tve_achieved);
    reg.gauge("dpz_compression_ratio").set(stats.cr_total);
    // Which SIMD kernel backend served this compression (0 = scalar
    // fallback; see dpz_kernels::Backend::id for the mapping).
    reg.gauge("dpz_kernel_backend")
        .set(f64::from(dpz_kernels::backend().id()));
    for (name, duration) in [
        ("decompose_dct", stats.timings.decompose_dct),
        ("sampling", stats.timings.sampling),
        ("pca", stats.timings.pca),
        ("quantize", stats.timings.quantize),
        ("lossless", stats.timings.lossless),
    ] {
        // Stage latencies span sub-µs (sampling off) to seconds (exascale
        // chunks): eight decades starting at 1 µs.
        reg.histogram_exponential_with("dpz_stage_seconds", &[("stage", name)], 1e-6, 10.0, 8)
            .observe(duration.as_secs_f64());
    }
    if let Some(est) = &stats.sampling {
        reg.gauge("dpz_sampling_vif").set(est.vif);
        reg.gauge("dpz_sampling_k_estimate")
            .set(est.k_estimate as f64);
    }
}

/// Decompress a DPZ container, returning values and dimensions.
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    decompress_with_info(bytes).map(|(v, dims, _)| (v, dims))
}

/// [`decompress`] that also reports the container version and checksum
/// status (for CLI summaries and migration tooling).
pub fn decompress_with_info(
    bytes: &[u8],
) -> Result<(Vec<f32>, Vec<usize>, ContainerInfo), DpzError> {
    let mut root = span!("decompress");
    let result = (|| {
        let (payload, info) = container::deserialize_with_info(bytes)?;
        let (values, dims, _) = reconstruct(&payload)?;
        Ok((values, dims, info))
    })();
    let reg = dpz_telemetry::global();
    match &result {
        Ok((values, _, _)) => {
            root.annotate("bytes", (values.len() * 4) as f64);
            let labels = [("codec", "dpz"), ("op", "decompress")];
            reg.counter("dpz_decompressions_total").inc();
            reg.counter_with("dpz_bytes_in_total", &labels)
                .add(bytes.len() as u64);
            reg.counter_with("dpz_bytes_out_total", &labels)
                .add(values.len() as u64 * 4);
        }
        Err(_) => {
            reg.counter_with("dpz_decode_rejects_total", &[("codec", "dpz")])
                .inc();
        }
    }
    result
}

/// Undo stages 1 & 2 for a given scores matrix: re-expand through the
/// stored basis (`Z ≈ Y·Dᵀ`, plus scale/mean), inverse-transform every
/// block, denormalize, and re-flatten. Shared by [`reconstruct`] (with
/// dequantized scores) and the breakdown path (with exact scores), so the
/// inverse chain exists once.
fn expand_scores(scores: &Matrix, payload: &ContainerData) -> Result<Vec<f32>, DpzError> {
    let (m, n, k) = (payload.m, payload.n, payload.k);
    let basis = Matrix::from_vec(m, k, payload.basis.iter().map(|&v| f64::from(v)).collect())
        .map_err(|_| DpzError::Corrupt("basis shape"))?;
    let mut coeffs = scores.matmul(&basis.transpose())?;
    for r in 0..n {
        let row = coeffs.row_mut(r);
        if payload.standardized {
            if payload.scale.len() != m {
                return Err(DpzError::Corrupt("scale vector inconsistent"));
            }
            for (v, &s) in row.iter_mut().zip(&payload.scale) {
                *v *= f64::from(s);
            }
        }
        for (v, &mu) in row.iter_mut().zip(&payload.mean) {
            *v += f64::from(mu);
        }
    }
    // Inverse transform, denormalize, re-flatten.
    let shape = BlockShape {
        m,
        n,
        pad: payload.pad,
    };
    if payload.transform_tag == 1 {
        let mut blocks = decompose::idwt_blocks(&coeffs, payload.dwt_levels as usize);
        for v in blocks.as_mut_slice() {
            *v = (*v + 0.5) * payload.norm_range + payload.norm_min;
        }
        Ok(decompose::from_blocks(&blocks, shape, payload.orig_len))
    } else {
        // Fused path: single transpose + paired inverse DCT + denormalize.
        Ok(decompose::idct_blocks_to_raw(
            &coeffs,
            shape,
            payload.norm_min,
            payload.norm_range,
            payload.orig_len,
        ))
    }
}

/// [`reconstruct`] for sibling modules that hold a payload decoded outside
/// the DPZ1 path (the chunked driver's progressive streams).
pub(crate) fn reconstruct_values(
    payload: &ContainerData,
) -> Result<(Vec<f32>, Vec<usize>), DpzError> {
    reconstruct(payload).map(|(v, d, _)| (v, d))
}

/// Shared reconstruction path. Also returns the de-quantized scores matrix
/// for breakdown analyses.
fn reconstruct(payload: &ContainerData) -> Result<(Vec<f32>, Vec<usize>, Matrix), DpzError> {
    let (m, n, k) = (payload.m, payload.n, payload.k);
    if payload.basis.len() != m * k || payload.mean.len() != m {
        return Err(DpzError::Corrupt("model vectors inconsistent with header"));
    }
    // Scores (n x k).
    let score_vals = dequantize_scores(&payload.scores);
    let scores =
        Matrix::from_vec(n, k, score_vals).map_err(|_| DpzError::Corrupt("score matrix shape"))?;
    let values = expand_scores(&scores, payload)?;
    Ok((values, payload.dims.clone(), scores))
}

/// Per-stage accuracy data for Tables III/IV.
#[derive(Debug, Clone)]
pub struct CompressionBreakdown {
    /// Everything from the normal compression path.
    pub stats: CompressionStats,
    /// The compressed container.
    pub bytes: Vec<u8>,
    /// Final reconstruction (all stages, i.e. what `decompress` returns).
    pub reconstructed: Vec<f32>,
    /// PSNR of a stage-1&2-only reconstruction (no quantization: exact
    /// scores through the same k-component basis).
    pub psnr_stage12: f64,
    /// PSNR of the full reconstruction.
    pub psnr_final: f64,
}

impl CompressionBreakdown {
    /// Accuracy lost to stage 3 + lossless, in dB (Table IV's Δ PSNR).
    pub fn delta_psnr(&self) -> f64 {
        self.psnr_stage12 - self.psnr_final
    }
}

/// Compress and additionally measure where the error budget goes: the
/// stage-1&2-only PSNR (unquantized scores) versus the final PSNR.
///
/// This is the *same* stage graph as [`compress`] — a tap after
/// `stage1.decompose_dct` captures the coefficient matrix, and the
/// stage-1&2 reconstruction projects it through the *stored* (f32-rounded)
/// model so basis rounding is attributed to stage 1&2, as in the paper
/// where stage 3 only adds quantization noise.
pub fn compress_with_breakdown(
    data: &[f32],
    dims: &[usize],
    cfg: &DpzConfig,
) -> Result<CompressionBreakdown, DpzError> {
    check_input(data, dims)?;
    let plan = PipelinePlan::new(data.len(), cfg)?;
    let (outcome, coeffs, _) = plan.project_inner(data, dims, true, None)?;
    let compressed = plan.encode(outcome);
    let coeffs = coeffs.expect("tap captured stage-1 coefficients");
    let payload = container::deserialize(&compressed.bytes)?;
    let (reconstructed, _, _) = reconstruct(&payload)?;

    // Center (and scale) the captured coefficients with the stored model,
    // project to exact (unquantized) scores, and run the shared inverse.
    let basis = Matrix::from_vec(
        payload.m,
        payload.k,
        payload.basis.iter().map(|&v| f64::from(v)).collect(),
    )
    .map_err(|_| DpzError::Corrupt("basis shape"))?;
    let mut centered = coeffs;
    for r in 0..payload.n {
        let row = centered.row_mut(r);
        for (v, &mu) in row.iter_mut().zip(&payload.mean) {
            *v -= f64::from(mu);
        }
        if payload.standardized {
            for (v, &s) in row.iter_mut().zip(&payload.scale) {
                *v /= f64::from(s);
            }
        }
    }
    let exact_scores = centered.matmul(&basis)?;
    let stage12 = expand_scores(&exact_scores, &payload)?;

    let psnr_stage12 = psnr(data, &stage12);
    let psnr_final = psnr(data, &reconstructed);
    Ok(CompressionBreakdown {
        stats: compressed.stats,
        bytes: compressed.bytes,
        reconstructed,
        psnr_stage12,
        psnr_final,
    })
}

/// Local PSNR helper (range-based, matching `dpz-data`'s definition without
/// creating a dependency cycle). Shared with the chunked drivers' fixed-PSNR
/// validation.
pub(crate) fn psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    let n = original.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut se = 0.0;
    for (&a, &b) in original.iter().zip(reconstructed) {
        let av = f64::from(a);
        lo = lo.min(av);
        hi = hi.max(av);
        let d = av - f64::from(b);
        se += d * d;
    }
    let mse = se / n as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    20.0 * range.log10() - 10.0 * mse.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TveLevel;
    use dpz_linalg::fit::FitKind;

    fn smooth_field(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (0.04 * r).sin() * 40.0 + (0.03 * c).cos() * 25.0 + 100.0
            })
            .collect()
    }

    #[test]
    fn round_trip_shapes_and_quality() {
        let data = smooth_field(64, 96);
        let cfg = DpzConfig::strict().with_tve(TveLevel::SixNines);
        let out = compress(&data, &[64, 96], &cfg).unwrap();
        let (recon, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![64, 96]);
        assert_eq!(recon.len(), data.len());
        let q = psnr(&data, &recon);
        assert!(q > 40.0, "PSNR too low: {q}");
        assert!(
            out.stats.cr_total > 1.0,
            "no compression: {}",
            out.stats.cr_total
        );
    }

    #[test]
    fn smooth_data_compresses_hard() {
        let data = smooth_field(128, 128);
        let cfg = DpzConfig::loose().with_tve(TveLevel::FiveNines);
        let out = compress(&data, &[128, 128], &cfg).unwrap();
        assert!(
            out.stats.cr_total > 15.0,
            "smooth field should compress >15x, got {:.1}",
            out.stats.cr_total
        );
    }

    #[test]
    fn tve_sweep_trades_rate_for_quality() {
        let data = smooth_field(96, 96);
        // Make it slightly rough so the spectrum has a tail.
        let data: Vec<f32> = data
            .iter()
            .enumerate()
            .map(|(i, &v)| v + ((i * 2654435761) % 1000) as f32 * 1e-3)
            .collect();
        let mut last_cr = f64::INFINITY;
        let mut last_psnr = 0.0;
        for level in [
            TveLevel::ThreeNines,
            TveLevel::FiveNines,
            TveLevel::SevenNines,
        ] {
            let cfg = DpzConfig::strict().with_tve(level);
            let out = compress(&data, &[96, 96], &cfg).unwrap();
            let (recon, _) = decompress(&out.bytes).unwrap();
            let q = psnr(&data, &recon);
            assert!(
                out.stats.cr_total <= last_cr * 1.001,
                "CR should fall as TVE tightens"
            );
            assert!(q >= last_psnr - 0.5, "PSNR should rise as TVE tightens");
            last_cr = out.stats.cr_total;
            last_psnr = q;
        }
    }

    #[test]
    fn knee_point_mode_works() {
        let data = smooth_field(80, 80);
        for fit in [FitKind::Interp1d, FitKind::Polynomial(7)] {
            let cfg = DpzConfig::loose().with_selection(KSelection::KneePoint(fit));
            let out = compress(&data, &[80, 80], &cfg).unwrap();
            let (recon, _) = decompress(&out.bytes).unwrap();
            assert_eq!(recon.len(), data.len());
            assert!(out.stats.k >= 1);
        }
    }

    #[test]
    fn sampling_path_round_trips() {
        let data = smooth_field(64, 64);
        let cfg = DpzConfig::loose()
            .with_tve(TveLevel::FiveNines)
            .with_sampling(true);
        let out = compress(&data, &[64, 64], &cfg).unwrap();
        assert!(out.stats.sampling.is_some());
        let (recon, _) = decompress(&out.bytes).unwrap();
        let q = psnr(&data, &recon);
        assert!(q > 35.0, "sampling path PSNR {q}");
    }

    #[test]
    fn breakdown_accounts_stage_losses() {
        let data = smooth_field(64, 64);
        let cfg = DpzConfig::strict().with_tve(TveLevel::FiveNines);
        let b = compress_with_breakdown(&data, &[64, 64], &cfg).unwrap();
        assert!(
            b.psnr_stage12 >= b.psnr_final - 1e-9,
            "stage 1&2 can only be better"
        );
        assert!(b.delta_psnr() >= -1e-9);
        // Multiplying the stage ratios reproduces (approximately) the total,
        // modulo the fixed-size header.
        let product = b.stats.cr_stage12 * b.stats.cr_stage3 * b.stats.cr_zlib;
        let ratio = product / b.stats.cr_total;
        assert!((0.9..1.2).contains(&ratio), "stage product off: {ratio}");
    }

    #[test]
    fn breakdown_bytes_match_plain_compress() {
        // The breakdown path must be the same graph, not a variant: its
        // container has to be byte-identical to a plain compress.
        let data = smooth_field(64, 96);
        let cfg = DpzConfig::strict().with_tve(TveLevel::FiveNines);
        let plain = compress(&data, &[64, 96], &cfg).unwrap();
        let b = compress_with_breakdown(&data, &[64, 96], &cfg).unwrap();
        assert_eq!(plain.bytes, b.bytes);
    }

    #[test]
    fn loose_vs_strict_quality_ordering() {
        let data = smooth_field(96, 64);
        let loose = compress_with_breakdown(&data, &[96, 64], &DpzConfig::loose()).unwrap();
        let strict = compress_with_breakdown(&data, &[96, 64], &DpzConfig::strict()).unwrap();
        assert!(
            strict.psnr_final >= loose.psnr_final,
            "strict {} should beat loose {}",
            strict.psnr_final,
            loose.psnr_final
        );
    }

    #[test]
    fn one_and_three_dimensional_inputs() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let out = compress(&data, &[4096], &DpzConfig::loose()).unwrap();
        let (recon, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![4096]);
        assert_eq!(recon.len(), 4096);

        let out = compress(&data, &[16, 16, 16], &DpzConfig::loose()).unwrap();
        let (_, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![16, 16, 16]);
    }

    #[test]
    fn awkward_length_with_padding() {
        let data: Vec<f32> = (0..997).map(|i| (i as f32 * 0.02).cos()).collect();
        let out = compress(&data, &[997], &DpzConfig::strict()).unwrap();
        let (recon, _) = decompress(&out.bytes).unwrap();
        assert_eq!(recon.len(), 997);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            compress(&[1.0], &[1], &DpzConfig::loose()),
            Err(DpzError::BadInput(_))
        ));
        assert!(matches!(
            compress(&[1.0, 2.0], &[3], &DpzConfig::loose()),
            Err(DpzError::BadInput(_))
        ));
        assert!(matches!(
            compress(&[1.0, f32::NAN], &[2], &DpzConfig::loose()),
            Err(DpzError::BadInput(_))
        ));
    }

    #[test]
    fn plan_rejects_mismatched_buffers() {
        assert!(matches!(
            PipelinePlan::new(1, &DpzConfig::loose()),
            Err(DpzError::BadInput(_))
        ));
        let plan = PipelinePlan::new(64, &DpzConfig::loose()).unwrap();
        assert_eq!(plan.len(), 64);
        assert!(!plan.is_empty());
        let short = vec![1.0f32; 32];
        assert!(matches!(
            plan.execute(&short, &[32]),
            Err(DpzError::BadInput("data length does not match plan"))
        ));
    }

    #[test]
    fn plan_reuse_is_deterministic_and_recycles_buffers() {
        let data = smooth_field(64, 64);
        let plan = PipelinePlan::new(data.len(), &DpzConfig::loose()).unwrap();
        let a = plan.execute(&data, &[64, 64]).unwrap();
        assert!(plan.pool.idle() > 0, "scratch returned to the pool");
        let b = plan.execute(&data, &[64, 64]).unwrap();
        assert_eq!(a.bytes, b.bytes, "plan reuse must be deterministic");
        // And identical to the one-shot wrapper.
        let c = compress(&data, &[64, 64], &DpzConfig::loose()).unwrap();
        assert_eq!(a.bytes, c.bytes);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(
            PipelinePlan::stage_names(),
            [
                "stage1.decompose_dct",
                "sampling",
                "stage2.pca",
                "stage3.quantize",
                "lossless"
            ]
        );
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(b"DPZ?nope").is_err());
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn stage_timings_total_sums_all_stages() {
        let t = StageTimings {
            decompose_dct: Duration::from_millis(1),
            sampling: Duration::from_millis(2),
            pca: Duration::from_millis(4),
            quantize: Duration::from_millis(8),
            lossless: Duration::from_millis(16),
        };
        assert_eq!(t.total(), Duration::from_millis(31));
        assert_eq!(StageTimings::default().total(), Duration::ZERO);
    }

    #[test]
    fn cr_product_matches_total_on_synthetic_field() {
        let data = smooth_field(96, 96);
        let out = compress(&data, &[96, 96], &DpzConfig::strict()).unwrap();
        let product = out.stats.cr_stage12 * out.stats.cr_stage3 * out.stats.cr_zlib;
        // The product ignores only the fixed-size container header, so it
        // must track the end-to-end ratio closely on a real-sized field.
        let ratio = product / out.stats.cr_total;
        assert!(
            (0.9..1.2).contains(&ratio),
            "cr_stage12*cr_stage3*cr_zlib = {product:.3} vs cr_total = {:.3}",
            out.stats.cr_total
        );
    }

    #[test]
    fn compress_populates_global_registry() {
        let data = smooth_field(64, 64);
        let before = dpz_telemetry::global().snapshot();
        let out = compress(&data, &[64, 64], &DpzConfig::loose()).unwrap();
        let delta = dpz_telemetry::global().snapshot().since(&before);
        // Other tests in this process also compress, so check lower bounds.
        assert!(delta.counter("dpz_compressions_total", &[]).unwrap() >= 1);
        let labels = [("codec", "dpz"), ("op", "compress")];
        assert!(delta.counter("dpz_bytes_in_total", &labels).unwrap() >= (data.len() * 4) as u64);
        assert!(delta.counter("dpz_bytes_out_total", &labels).unwrap() >= out.bytes.len() as u64);
        let pca = delta
            .histogram("dpz_stage_seconds", &[("stage", "pca")])
            .unwrap();
        assert!(pca.count >= 1);
        let span = delta
            .histogram("dpz_span_seconds", &[("span", "compress.stage2.pca")])
            .expect("pca span series");
        assert!(span.count >= 1);
    }

    #[test]
    fn timings_are_recorded() {
        let data = smooth_field(64, 64);
        let out = compress(&data, &[64, 64], &DpzConfig::loose()).unwrap();
        let t = out.stats.timings;
        assert!(t.total() > Duration::ZERO);
        assert!(t.pca > Duration::ZERO);
    }

    #[test]
    fn dwt_transform_round_trips() {
        use crate::config::Stage1Transform;
        let data = smooth_field(64, 64);
        let cfg = DpzConfig::strict()
            .with_tve(TveLevel::SixNines)
            .with_transform(Stage1Transform::Dwt { levels: 4 });
        let out = compress(&data, &[64, 64], &cfg).unwrap();
        let payload = crate::container::deserialize(&out.bytes).unwrap();
        assert_eq!(payload.transform_tag, 1);
        assert!(payload.dwt_levels >= 1);
        let (recon, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, vec![64, 64]);
        let q = psnr(&data, &recon);
        assert!(q > 40.0, "DWT stage-1 PSNR too low: {q}");
    }

    #[test]
    fn dct_and_dwt_are_comparable_on_smooth_data() {
        use crate::config::Stage1Transform;
        let data = smooth_field(96, 96);
        let cfg_dct = DpzConfig::strict().with_tve(TveLevel::FiveNines);
        let cfg_dwt = cfg_dct.with_transform(Stage1Transform::Dwt { levels: 5 });
        let a = compress(&data, &[96, 96], &cfg_dct).unwrap();
        let b = compress(&data, &[96, 96], &cfg_dwt).unwrap();
        // The paper's claim: any orthonormal transform with good compaction
        // works. The two must land in the same ballpark, not be identical.
        let ratio = a.stats.cr_total / b.stats.cr_total;
        assert!(
            (0.2..5.0).contains(&ratio),
            "DCT {:.1}x vs DWT {:.1}x diverged",
            a.stats.cr_total,
            b.stats.cr_total
        );
    }

    #[test]
    fn constant_field_degenerates_gracefully() {
        let data = vec![7.25f32; 1024];
        let out = compress(&data, &[32, 32], &DpzConfig::loose()).unwrap();
        let (recon, _) = decompress(&out.bytes).unwrap();
        for v in &recon {
            assert!((v - 7.25).abs() < 1e-2, "constant field reconstruction {v}");
        }
        // The container header + DEFLATE framing dominate at this tiny size.
        assert!(
            out.stats.cr_total > 15.0,
            "constant field CR {}",
            out.stats.cr_total
        );
    }
}
