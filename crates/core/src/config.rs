//! Compressor configuration: the quality target (the paper's DPZ-l / DPZ-s
//! operating points plus the fixed-ratio / fixed-PSNR control targets), the
//! two k-selection methods of Algorithm 1, and the standardization policy.

use crate::container::{DpzError, LosslessBackend};
use crate::target::{QualityTarget, WIDE_INDEX_AUTO_THRESHOLD};
use dpz_linalg::fit::FitKind;

/// Which deterministic transform stage 1 applies to each block.
///
/// The paper uses the DCT but proves the PCA-in-transform-domain identity
/// for any orthogonal transform and explicitly calls out wavelets as an
/// alternative (Section III-B2); [`Stage1Transform::Dwt`] implements that
/// variant with the orthonormal Daubechies-4 wavelet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage1Transform {
    /// DCT-II per block (the paper's choice).
    Dct,
    /// Multi-level Daubechies-4 DWT per block; levels are clamped to what
    /// the block length supports.
    Dwt {
        /// Requested decomposition depth (typically 3-6).
        levels: usize,
    },
}

/// Quantizer index-width policy: how many bytes each stage-3 bin index
/// occupies. `Auto` follows the resolved bound — bounds tighter than
/// [`WIDE_INDEX_AUTO_THRESHOLD`] need the 65535-bin range to keep the
/// outlier stream small, looser bounds fit in one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexWidth {
    /// Decide from the resolved bound.
    #[default]
    Auto,
    /// 1-byte indices (255 bins) — DPZ-l.
    Narrow,
    /// 2-byte indices (65535 bins) — DPZ-s.
    Wide,
}

/// Quantization scheme (Section V-A): the *resolved* stage-3 realization of
/// a [`QualityTarget`] — a concrete bound plus index width. The quantizer
/// layer speaks `Scheme`; the config layer speaks `QualityTarget` and
/// resolves it here via [`DpzConfig::resolved_scheme`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// DPZ-l ("loose"): `P = 1e-3`, 1-byte bin indices.
    Loose,
    /// DPZ-s ("strict"): `P = 1e-4`, 2-byte bin indices.
    Strict,
    /// Custom error bound and index width.
    Custom {
        /// Quantizer error bound `P` on each retained PCA score.
        p: f64,
        /// Use 2-byte indices (otherwise 1-byte).
        wide_index: bool,
    },
}

impl Scheme {
    /// Quantizer half-bin error bound `P`.
    pub fn p(self) -> f64 {
        match self {
            Scheme::Loose => 1e-3,
            Scheme::Strict => 1e-4,
            Scheme::Custom { p, .. } => p,
        }
    }

    /// True when indices are 2-byte.
    pub fn wide_index(self) -> bool {
        match self {
            Scheme::Loose => false,
            Scheme::Strict => true,
            Scheme::Custom { wide_index, .. } => wide_index,
        }
    }

    /// Number of usable bins `B` (one index value is reserved as the
    /// out-of-range escape).
    pub fn bins(self) -> u32 {
        if self.wide_index() {
            u32::from(u16::MAX) // 65535 bins, escape = 65535
        } else {
            u32::from(u8::MAX) // 255 bins, escape = 255
        }
    }
}

/// Named explained-variance thresholds ("two-nine" through "eight-nine",
/// Section IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TveLevel {
    /// 99%
    TwoNines,
    /// 99.9%
    ThreeNines,
    /// 99.99%
    FourNines,
    /// 99.999%
    FiveNines,
    /// 99.9999%
    SixNines,
    /// 99.99999%
    SevenNines,
    /// 99.999999% — "strict enough for high compression quality".
    EightNines,
}

impl TveLevel {
    /// The threshold as a fraction in `(0, 1)`.
    pub fn fraction(self) -> f64 {
        match self {
            TveLevel::TwoNines => 0.99,
            TveLevel::ThreeNines => 0.999,
            TveLevel::FourNines => 0.9999,
            TveLevel::FiveNines => 0.99999,
            TveLevel::SixNines => 0.999999,
            TveLevel::SevenNines => 0.9999999,
            TveLevel::EightNines => 0.99999999,
        }
    }

    /// The sweep used in the paper's rate-distortion figures
    /// ("three-nine" → "eight-nine").
    pub const SWEEP: [TveLevel; 6] = [
        TveLevel::ThreeNines,
        TveLevel::FourNines,
        TveLevel::FiveNines,
        TveLevel::SixNines,
        TveLevel::SevenNines,
        TveLevel::EightNines,
    ];

    /// Number of nines, e.g. `ThreeNines -> 3`.
    pub fn nines(self) -> u32 {
        match self {
            TveLevel::TwoNines => 2,
            TveLevel::ThreeNines => 3,
            TveLevel::FourNines => 4,
            TveLevel::FiveNines => 5,
            TveLevel::SixNines => 6,
            TveLevel::SevenNines => 7,
            TveLevel::EightNines => 8,
        }
    }
}

/// How to choose the number of retained components `k` (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KSelection {
    /// Method 1: knee-point detection on the cumulative TVE curve, with the
    /// chosen curve-fitting method (1-D interpolation or polynomial).
    KneePoint(FitKind),
    /// Method 2: smallest `k` reaching the explained-variance threshold.
    Tve(f64),
    /// Fix `k` directly (used by ablations and the sampling fast path).
    Fixed(usize),
}

/// Whether to standardize features before PCA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standardize {
    /// Decide from the sampled VIF (standardize when VIF < 5 — low
    /// collinearity; Algorithm 2 step 2).
    Auto,
    /// Always standardize.
    On,
    /// Never standardize.
    Off,
}

/// Complete DPZ configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpzConfig {
    /// What the caller wants: an error bound (static), or a ratio / PSNR
    /// control target that [`crate::compress`] resolves per input.
    pub target: QualityTarget,
    /// Stage-3 index-width policy applied to the resolved bound.
    pub index_width: IndexWidth,
    /// Stage-1 deterministic transform.
    pub transform: Stage1Transform,
    /// k-selection method (stage 2).
    pub selection: KSelection,
    /// Standardization policy.
    pub standardize: Standardize,
    /// Run the sampling strategy (Algorithm 2): estimates `k` from block
    /// subsets and enables the truncated eigensolver fast path.
    pub sampling: bool,
    /// Number of subsets `S` for sampling (10 by default).
    pub sampling_subsets: usize,
    /// Subsets actually examined, `T` (3 by default: first/middle/last).
    pub sampling_picks: usize,
    /// Sampling rate for the VIF compressibility probe.
    pub vif_sample_rate: f64,
    /// Entropy backend for the container's lossless sections (stage 4).
    pub lossless: LosslessBackend,
}

impl DpzConfig {
    /// DPZ-l with the "five-nine" TVE default (`P = 1e-3`, 1-byte indices —
    /// byte-identical artifacts to the historical `Scheme::Loose`).
    pub fn loose() -> DpzConfig {
        DpzConfig {
            target: QualityTarget::ErrorBound(1e-3),
            index_width: IndexWidth::Narrow,
            transform: Stage1Transform::Dct,
            selection: KSelection::Tve(TveLevel::FiveNines.fraction()),
            standardize: Standardize::Auto,
            sampling: false,
            sampling_subsets: 10,
            sampling_picks: 3,
            vif_sample_rate: 0.01,
            lossless: LosslessBackend::Deflate,
        }
    }

    /// DPZ-s with the "five-nine" TVE default (`P = 1e-4`, 2-byte indices).
    pub fn strict() -> DpzConfig {
        DpzConfig {
            target: QualityTarget::ErrorBound(1e-4),
            index_width: IndexWidth::Wide,
            ..DpzConfig::loose()
        }
    }

    /// Set the quality target and reset the index-width policy to `Auto`
    /// (the resolved bound decides). Use [`DpzConfig::with_index_width`]
    /// afterwards to force a width.
    pub fn with_target(mut self, target: QualityTarget) -> DpzConfig {
        self.target = target;
        self.index_width = IndexWidth::Auto;
        self
    }

    /// Set the stage-3 index-width policy.
    pub fn with_index_width(mut self, index_width: IndexWidth) -> DpzConfig {
        self.index_width = index_width;
        self
    }

    /// Express a legacy quantization [`Scheme`] as a target + width pair
    /// (`Scheme::Loose` ↔ `ErrorBound(1e-3)`/`Narrow`, and so on) —
    /// byte-identical artifacts to the pre-target config plumbing.
    pub fn with_scheme(mut self, scheme: Scheme) -> DpzConfig {
        self.target = QualityTarget::ErrorBound(scheme.p());
        self.index_width = if scheme.wide_index() {
            IndexWidth::Wide
        } else {
            IndexWidth::Narrow
        };
        self
    }

    /// The index width the policy picks for a resolved bound `p`.
    pub fn wide_for(&self, p: f64) -> bool {
        match self.index_width {
            IndexWidth::Narrow => false,
            IndexWidth::Wide => true,
            IndexWidth::Auto => p < WIDE_INDEX_AUTO_THRESHOLD,
        }
    }

    /// The concrete stage-3 scheme this config resolves to, or
    /// [`DpzError::InvalidConfig`] when the target is data-dependent
    /// (`Ratio` / `Psnr`) and has not been resolved yet — those must go
    /// through [`crate::compress`] (or the chunked drivers), which run the
    /// control loop first.
    pub fn resolved_scheme(&self) -> Result<Scheme, DpzError> {
        self.target.validate()?;
        let p = self.target.static_bound().ok_or_else(|| {
            DpzError::InvalidConfig(
                "ratio/PSNR targets are resolved per input; use dpz_core::compress \
                 or compress_chunked instead of planning directly"
                    .into(),
            )
        })?;
        Ok(Scheme::Custom {
            p,
            wide_index: self.wide_for(p),
        })
    }

    /// Replace the target with an already-resolved bound, keeping the
    /// index-width policy (the control loops call this after a search).
    pub(crate) fn with_resolved_bound(&self, p: f64) -> DpzConfig {
        let mut c = *self;
        c.target = QualityTarget::ErrorBound(p);
        c
    }

    /// Set the k-selection method.
    pub fn with_selection(mut self, selection: KSelection) -> DpzConfig {
        self.selection = selection;
        self
    }

    /// Set the TVE threshold.
    pub fn with_tve(self, level: TveLevel) -> DpzConfig {
        self.with_selection(KSelection::Tve(level.fraction()))
    }

    /// Enable/disable the sampling strategy.
    pub fn with_sampling(mut self, sampling: bool) -> DpzConfig {
        self.sampling = sampling;
        self
    }

    /// Set the standardization policy.
    pub fn with_standardize(mut self, standardize: Standardize) -> DpzConfig {
        self.standardize = standardize;
        self
    }

    /// Set the stage-1 transform.
    pub fn with_transform(mut self, transform: Stage1Transform) -> DpzConfig {
        self.transform = transform;
        self
    }

    /// Set the lossless entropy backend (stage 4). [`LosslessBackend::Tans`]
    /// writes version-3 containers; the default DEFLATE output is
    /// byte-identical to previous releases.
    pub fn with_lossless(mut self, lossless: LosslessBackend) -> DpzConfig {
        self.lossless = lossless;
        self
    }
}

impl Default for DpzConfig {
    fn default() -> Self {
        DpzConfig::loose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parameters_match_paper() {
        assert_eq!(Scheme::Loose.p(), 1e-3);
        assert!(!Scheme::Loose.wide_index());
        assert_eq!(Scheme::Strict.p(), 1e-4);
        assert!(Scheme::Strict.wide_index());
        assert_eq!(Scheme::Loose.bins(), 255);
        assert_eq!(Scheme::Strict.bins(), 65535);
    }

    #[test]
    fn tve_levels_ordered() {
        let mut prev = 0.0;
        for level in TveLevel::SWEEP {
            assert!(level.fraction() > prev);
            prev = level.fraction();
        }
        assert_eq!(TveLevel::EightNines.fraction(), 0.99999999);
        assert_eq!(TveLevel::ThreeNines.nines(), 3);
    }

    #[test]
    fn builders_compose() {
        let cfg = DpzConfig::strict()
            .with_tve(TveLevel::SevenNines)
            .with_sampling(true)
            .with_standardize(Standardize::Off)
            .with_transform(Stage1Transform::Dwt { levels: 4 });
        assert_eq!(cfg.target, QualityTarget::ErrorBound(1e-4));
        assert_eq!(cfg.index_width, IndexWidth::Wide);
        assert_eq!(cfg.selection, KSelection::Tve(0.9999999));
        assert!(cfg.sampling);
        assert_eq!(cfg.standardize, Standardize::Off);
        assert_eq!(cfg.transform, Stage1Transform::Dwt { levels: 4 });
        assert_eq!(DpzConfig::loose().transform, Stage1Transform::Dct);
    }

    #[test]
    fn custom_scheme() {
        let s = Scheme::Custom {
            p: 5e-3,
            wide_index: true,
        };
        assert_eq!(s.p(), 5e-3);
        assert_eq!(s.bins(), 65535);
    }

    #[test]
    fn targets_resolve_to_legacy_schemes() {
        // The paper's two operating points resolve to schemes that are
        // byte-identical to the pre-refactor Scheme::Loose / Scheme::Strict.
        let loose = DpzConfig::loose().resolved_scheme().unwrap();
        assert_eq!(loose.p(), Scheme::Loose.p());
        assert_eq!(loose.wide_index(), Scheme::Loose.wide_index());
        assert_eq!(loose.bins(), Scheme::Loose.bins());
        let strict = DpzConfig::strict().resolved_scheme().unwrap();
        assert_eq!(strict.p(), Scheme::Strict.p());
        assert_eq!(strict.wide_index(), Scheme::Strict.wide_index());

        // Auto width follows the bound across the threshold.
        let auto = DpzConfig::loose().with_target(QualityTarget::ErrorBound(1e-4));
        assert!(auto.resolved_scheme().unwrap().wide_index());
        let auto = DpzConfig::strict().with_target(QualityTarget::ErrorBound(1e-3));
        assert!(!auto.resolved_scheme().unwrap().wide_index());

        // RelBound is the explicit spelling of the same (range-relative)
        // contract and resolves identically.
        let rel = DpzConfig::loose().with_target(QualityTarget::RelBound(1e-3));
        assert_eq!(rel.resolved_scheme().unwrap().p(), 1e-3);
    }

    #[test]
    fn search_targets_refuse_static_resolution() {
        let cfg = DpzConfig::loose().with_target(QualityTarget::Ratio {
            target: 20.0,
            tol: 0.1,
        });
        assert!(matches!(
            cfg.resolved_scheme(),
            Err(DpzError::InvalidConfig(_))
        ));
        let cfg = DpzConfig::loose().with_target(QualityTarget::Psnr(60.0));
        assert!(matches!(
            cfg.resolved_scheme(),
            Err(DpzError::InvalidConfig(_))
        ));
        // Invalid parameters are typed errors, not panics.
        let cfg = DpzConfig::loose().with_target(QualityTarget::ErrorBound(-1.0));
        assert!(matches!(
            cfg.resolved_scheme(),
            Err(DpzError::InvalidConfig(_))
        ));
    }

    #[test]
    fn with_scheme_compat_maps_to_targets() {
        let cfg = DpzConfig::loose().with_scheme(Scheme::Custom {
            p: 5e-4,
            wide_index: true,
        });
        assert_eq!(cfg.target, QualityTarget::ErrorBound(5e-4));
        assert_eq!(cfg.index_width, IndexWidth::Wide);
        let s = cfg.resolved_scheme().unwrap();
        assert_eq!(s.p(), 5e-4);
        assert!(s.wide_index());
    }
}
