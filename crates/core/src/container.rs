//! Self-describing DPZ stream format and its errors.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "DPZ1" | version u8 | ndims u8 | dims u64×ndims
//! | orig_len u64 | M u64 | N u64 | pad u64
//! | norm_min f64 | norm_range f64 | k u64
//! | transform u8 | dwt_levels u8 | P f64 | wide_index u8 | standardized u8
//! | model section   (u64 raw len, u64 packed len, DEFLATE bytes)
//! | indices section (u64 raw len, u64 packed len, DEFLATE bytes)
//! | outlier section (u64 count, u64 packed len, DEFLATE bytes)
//! ```
//!
//! The *model* section is the PCA projection matrix `D` (`M×k` `f32`,
//! row-major), the `M` feature means (`f32`), and — when standardization was
//! applied — the `M` feature scales (`f32`). Every section is compressed
//! with `dpz-deflate` (the paper's "zlib add-on" applied to indices and
//! out-of-range points; compressing the model too is strictly beneficial).

use crate::quantize::QuantizedScores;
use dpz_deflate::{compress_parallel, decompress as inflate, CompressionLevel, DeflateError};

const MAGIC: &[u8; 4] = b"DPZ1";
const VERSION: u8 = 1;

/// Errors from DPZ compression or decompression.
#[derive(Debug, Clone, PartialEq)]
pub enum DpzError {
    /// Malformed or truncated container.
    Corrupt(&'static str),
    /// Failure in a DEFLATE section.
    Deflate(DeflateError),
    /// Numerical failure (eigensolver non-convergence etc.).
    Numeric(String),
    /// Input that cannot be compressed (too small, wrong shape, …).
    BadInput(&'static str),
}

impl std::fmt::Display for DpzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpzError::Corrupt(w) => write!(f, "corrupt DPZ stream: {w}"),
            DpzError::Deflate(e) => write!(f, "DPZ section: {e}"),
            DpzError::Numeric(w) => write!(f, "numerical failure: {w}"),
            DpzError::BadInput(w) => write!(f, "bad input: {w}"),
        }
    }
}

impl std::error::Error for DpzError {}

impl From<DeflateError> for DpzError {
    fn from(e: DeflateError) -> Self {
        DpzError::Deflate(e)
    }
}

impl From<dpz_linalg::LinalgError> for DpzError {
    fn from(e: dpz_linalg::LinalgError) -> Self {
        DpzError::Numeric(e.to_string())
    }
}

/// Raw vs. DEFLATE-packed sizes per section — the inputs to the paper's
/// per-stage compression-ratio breakdown (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// PCA basis + means (+ scales) before/after DEFLATE.
    pub model_raw: usize,
    /// Packed model bytes.
    pub model_packed: usize,
    /// Quantizer index stream before/after DEFLATE.
    pub indices_raw: usize,
    /// Packed index bytes.
    pub indices_packed: usize,
    /// Outlier payload before/after DEFLATE.
    pub outliers_raw: usize,
    /// Packed outlier bytes.
    pub outliers_packed: usize,
}

impl SectionSizes {
    /// Total raw bytes entering the lossless stage.
    pub fn total_raw(&self) -> usize {
        self.model_raw + self.indices_raw + self.outliers_raw
    }

    /// Total packed bytes leaving the lossless stage.
    pub fn total_packed(&self) -> usize {
        self.model_packed + self.indices_packed + self.outliers_packed
    }
}

/// Everything the encoder must persist.
#[derive(Debug, Clone)]
pub struct ContainerData {
    /// Original array dimensions.
    pub dims: Vec<usize>,
    /// Original flattened length.
    pub orig_len: usize,
    /// Block count (features).
    pub m: usize,
    /// Block length (samples).
    pub n: usize,
    /// Padding appended during decomposition.
    pub pad: usize,
    /// Offset removed during range normalization (the data minimum).
    pub norm_min: f64,
    /// Scale removed during range normalization (the data range; 1 for
    /// constant data so denormalization is a no-op).
    pub norm_range: f64,
    /// Retained components.
    pub k: usize,
    /// Stage-1 transform tag: 0 = DCT, 1 = DWT.
    pub transform_tag: u8,
    /// DWT levels actually applied (0 for DCT).
    pub dwt_levels: u8,
    /// Quantizer error bound.
    pub p: f64,
    /// Whether features were standardized before PCA.
    pub standardized: bool,
    /// Projection matrix `D` (`M×k`, row-major), as f32.
    pub basis: Vec<f32>,
    /// Feature means (length `M`).
    pub mean: Vec<f32>,
    /// Feature scales (length `M`) when standardized.
    pub scale: Vec<f32>,
    /// Quantized scores.
    pub scores: QuantizedScores,
}

fn push_u64(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

/// Serialize to the container format, also reporting per-section sizes.
pub fn serialize(data: &ContainerData) -> (Vec<u8>, SectionSizes) {
    // Model section: basis ++ mean ++ scale.
    let mut model = Vec::with_capacity((data.basis.len() + 2 * data.mean.len()) * 4);
    for &v in data.basis.iter().chain(&data.mean).chain(&data.scale) {
        model.extend_from_slice(&v.to_le_bytes());
    }
    // Multi-member zlib: each section deflates in parallel strips; small
    // sections fall back to a byte-identical single member (see
    // `dpz_deflate::compress_parallel`).
    let model_packed = compress_parallel(&model, CompressionLevel::Default);
    let indices_packed = compress_parallel(&data.scores.indices, CompressionLevel::Default);
    let outlier_bytes: Vec<u8> = data
        .scores
        .outliers
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let outliers_packed = compress_parallel(&outlier_bytes, CompressionLevel::Default);

    let sizes = SectionSizes {
        model_raw: model.len(),
        model_packed: model_packed.len(),
        indices_raw: data.scores.indices.len(),
        indices_packed: indices_packed.len(),
        outliers_raw: outlier_bytes.len(),
        outliers_packed: outliers_packed.len(),
    };

    let mut out = Vec::with_capacity(sizes.total_packed() + 128);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(data.dims.len() as u8);
    for &d in &data.dims {
        push_u64(&mut out, d);
    }
    push_u64(&mut out, data.orig_len);
    push_u64(&mut out, data.m);
    push_u64(&mut out, data.n);
    push_u64(&mut out, data.pad);
    out.extend_from_slice(&data.norm_min.to_le_bytes());
    out.extend_from_slice(&data.norm_range.to_le_bytes());
    push_u64(&mut out, data.k);
    out.push(data.transform_tag);
    out.push(data.dwt_levels);
    out.extend_from_slice(&data.p.to_le_bytes());
    out.push(u8::from(data.scores.wide_index));
    out.push(u8::from(data.standardized));
    push_u64(&mut out, model.len());
    push_u64(&mut out, model_packed.len());
    out.extend_from_slice(&model_packed);
    push_u64(&mut out, data.scores.indices.len());
    push_u64(&mut out, indices_packed.len());
    out.extend_from_slice(&indices_packed);
    push_u64(&mut out, data.scores.outliers.len());
    push_u64(&mut out, outliers_packed.len());
    out.extend_from_slice(&outliers_packed);
    (out, sizes)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DpzError> {
        if self.pos + n > self.buf.len() {
            return Err(DpzError::Corrupt("truncated stream"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DpzError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<usize, DpzError> {
        let b = self.take(8)?;
        let v = u64::from_le_bytes(b.try_into().unwrap());
        usize::try_from(v).map_err(|_| DpzError::Corrupt("size overflows usize"))
    }

    fn f64(&mut self) -> Result<f64, DpzError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }
}

fn f32s_from(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Parse a container back into its parts.
pub fn deserialize(bytes: &[u8]) -> Result<ContainerData, DpzError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    if cur.take(4)? != MAGIC {
        return Err(DpzError::Corrupt("bad magic"));
    }
    if cur.u8()? != VERSION {
        return Err(DpzError::Corrupt("unsupported version"));
    }
    let ndims = cur.u8()? as usize;
    if ndims == 0 || ndims > 8 {
        return Err(DpzError::Corrupt("implausible dimensionality"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(cur.u64()?);
    }
    let orig_len = cur.u64()?;
    let m = cur.u64()?;
    let n = cur.u64()?;
    let pad = cur.u64()?;
    let norm_min = cur.f64()?;
    let norm_range = cur.f64()?;
    let k = cur.u64()?;
    let transform_tag = cur.u8()?;
    let dwt_levels = cur.u8()?;
    if transform_tag > 1 || (transform_tag == 0 && dwt_levels != 0) {
        return Err(DpzError::Corrupt("unknown stage-1 transform"));
    }
    let p = cur.f64()?;
    let wide_index = cur.u8()? != 0;
    let standardized = cur.u8()? != 0;
    if dims.iter().product::<usize>() != orig_len {
        return Err(DpzError::Corrupt("dims do not match length"));
    }
    if m == 0 || n == 0 || m.checked_mul(n) != Some(orig_len + pad) {
        return Err(DpzError::Corrupt("inconsistent block shape"));
    }
    if k == 0 || k > m {
        return Err(DpzError::Corrupt("invalid component count"));
    }
    // `!(x > 0.0)` rather than `x <= 0.0`: NaN must also be rejected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(p > 0.0) || !p.is_finite() {
        return Err(DpzError::Corrupt("invalid error bound"));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !norm_min.is_finite() || !(norm_range > 0.0) || !norm_range.is_finite() {
        return Err(DpzError::Corrupt("invalid normalization"));
    }

    let model_raw = cur.u64()?;
    let model_packed_len = cur.u64()?;
    let model = inflate(cur.take(model_packed_len)?)?;
    if model.len() != model_raw {
        return Err(DpzError::Corrupt("model section size mismatch"));
    }
    let expected_model = m * k + m + if standardized { m } else { 0 };
    if model.len() != expected_model * 4 {
        return Err(DpzError::Corrupt("model section shape mismatch"));
    }
    let model_f = f32s_from(&model);
    let basis = model_f[..m * k].to_vec();
    let mean = model_f[m * k..m * k + m].to_vec();
    let scale = if standardized {
        model_f[m * k + m..].to_vec()
    } else {
        Vec::new()
    };

    let indices_raw = cur.u64()?;
    let indices_packed_len = cur.u64()?;
    let indices = inflate(cur.take(indices_packed_len)?)?;
    if indices.len() != indices_raw {
        return Err(DpzError::Corrupt("index section size mismatch"));
    }
    let index_width = if wide_index { 2 } else { 1 };
    if indices.len() != n * k * index_width {
        return Err(DpzError::Corrupt("index stream length mismatch"));
    }

    let n_outliers = cur.u64()?;
    let outliers_packed_len = cur.u64()?;
    let outlier_bytes = inflate(cur.take(outliers_packed_len)?)?;
    if outlier_bytes.len() != n_outliers * 4 {
        return Err(DpzError::Corrupt("outlier section size mismatch"));
    }
    let outliers = f32s_from(&outlier_bytes);

    let bins = if wide_index {
        u32::from(u16::MAX)
    } else {
        u32::from(u8::MAX)
    };
    let scores = QuantizedScores {
        indices,
        wide_index,
        outliers,
        p,
        bins,
        len: n * k,
    };
    Ok(ContainerData {
        dims,
        orig_len,
        m,
        n,
        pad,
        norm_min,
        norm_range,
        k,
        transform_tag,
        dwt_levels,
        p,
        standardized,
        basis,
        mean,
        scale,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::quantize::quantize_scores;

    fn sample_container() -> ContainerData {
        let scores: Vec<f64> = (0..40).map(|i| (i as f64 * 0.31).sin() * 0.1).collect();
        let q = quantize_scores(&scores, Scheme::Loose);
        ContainerData {
            dims: vec![10, 8],
            orig_len: 80,
            m: 8,
            n: 10,
            pad: 0,
            norm_min: -1.5,
            norm_range: 3.0,
            k: 4,
            transform_tag: 0,
            dwt_levels: 0,
            p: Scheme::Loose.p(),
            standardized: false,
            basis: (0..32).map(|i| i as f32 * 0.01).collect(),
            mean: vec![0.5; 8],
            scale: vec![],
            scores: q,
        }
    }

    #[test]
    fn round_trip() {
        let data = sample_container();
        let (bytes, sizes) = serialize(&data);
        assert!(sizes.total_raw() > 0);
        let parsed = deserialize(&bytes).unwrap();
        assert_eq!(parsed.dims, data.dims);
        assert_eq!(parsed.k, 4);
        assert_eq!(parsed.basis, data.basis);
        assert_eq!(parsed.mean, data.mean);
        assert_eq!(parsed.scores, data.scores);
    }

    #[test]
    fn round_trip_with_scale() {
        let mut data = sample_container();
        data.standardized = true;
        data.scale = vec![2.0; 8];
        let (bytes, _) = serialize(&data);
        let parsed = deserialize(&bytes).unwrap();
        assert!(parsed.standardized);
        assert_eq!(parsed.scale, data.scale);
    }

    #[test]
    fn rejects_bad_magic() {
        let (mut bytes, _) = serialize(&sample_container());
        bytes[0] = b'X';
        assert!(matches!(
            deserialize(&bytes),
            Err(DpzError::Corrupt("bad magic"))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let (bytes, _) = serialize(&sample_container());
        for cut in [0, 3, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(deserialize(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_inconsistent_header() {
        let mut data = sample_container();
        data.k = 0;
        let (bytes, _) = serialize(&data);
        assert!(deserialize(&bytes).is_err());
        let mut data = sample_container();
        data.orig_len = 81; // dims product mismatch
        let (bytes, _) = serialize(&data);
        assert!(deserialize(&bytes).is_err());
    }

    #[test]
    fn section_sizes_add_up() {
        let (_, sizes) = serialize(&sample_container());
        assert_eq!(
            sizes.total_raw(),
            sizes.model_raw + sizes.indices_raw + sizes.outliers_raw
        );
        assert!(sizes.total_packed() > 0);
    }
}
