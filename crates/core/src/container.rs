//! Self-describing DPZ stream format and its errors.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "DPZ1" | version u8 | ndims u8 | dims u64×ndims
//! | orig_len u64 | M u64 | N u64 | pad u64
//! | norm_min f64 | norm_range f64 | k u64
//! | transform u8 | dwt_levels u8 | P f64 | wide_index u8 | standardized u8
//! | model section   (u64 raw len, u64 packed len, DEFLATE bytes[, crc32 u32])
//! | indices section (u64 raw len, u64 packed len, DEFLATE bytes[, crc32 u32])
//! | outlier section (u64 count, u64 packed len, DEFLATE bytes[, crc32 u32])
//! ```
//!
//! Version 2 appends a CRC-32 trailer (over the *packed* bytes) to every
//! section, so container corruption is detected before any inflate work.
//! Version-1 streams — identical layout minus the trailers — still decode;
//! [`deserialize_with_info`] reports which form was seen.
//!
//! Version 3 prefixes every section with a one-byte [`LosslessBackend`]
//! flag (0 = DEFLATE, 1 = tANS), letting each section pick its entropy
//! coder independently. The writer emits v3 *only* when at least one
//! section actually uses tANS; with the default DEFLATE backend the output
//! is byte-identical to version 2, and v1/v2 streams keep decoding.
//!
//! The *model* section is the PCA projection matrix `D` (`M×k` `f32`,
//! row-major), the `M` feature means (`f32`), and — when standardization was
//! applied — the `M` feature scales (`f32`). Every section is compressed
//! with `dpz-deflate` (the paper's "zlib add-on" applied to indices and
//! out-of-range points; compressing the model too is strictly beneficial).
//!
//! **Decode hardening contract:** no byte stream may panic, abort, or force
//! a large allocation. All header arithmetic is checked (overflow ⇒
//! [`DpzError::Corrupt`]); every section inflate is bounded by the size the
//! validated header implies, so declared-small-but-inflates-huge bombs fail
//! fast with [`DeflateError::TooLarge`].

use crate::quantize::{dequantize_scores, QuantizedScores};
use dpz_deflate::{
    compress_parallel, crc32, decompress_bounded, tans, CompressionLevel, DeflateError,
};

const MAGIC: &[u8; 4] = b"DPZ1";
/// Default writer version (per-section CRC-32 trailers, DEFLATE sections).
const VERSION: u8 = 2;
/// Writer version when any section uses the tANS backend.
const VERSION_TANS: u8 = 3;
/// Oldest version the decoder still accepts (pre-checksum layout).
const MIN_VERSION: u8 = 1;
/// Sections smaller than this stay on DEFLATE even under the tANS backend:
/// the tANS frequency-table header dominates tiny payloads.
const TANS_MIN_SECTION: usize = 256;

/// Entropy coder used for a container section's packed bytes.
///
/// The default, [`LosslessBackend::Deflate`], reproduces the paper's "zlib
/// add-on" byte-for-byte (a v2 container). [`LosslessBackend::Tans`]
/// switches bulky sections to the interleaved tabled-ANS coder in
/// `dpz_deflate::tans` — an order-0 coder with no string matcher, which
/// trades a little ratio on match-heavy payloads for a much faster,
/// branch-light decode loop — and stamps the container as version 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LosslessBackend {
    /// LZ77 + Huffman per RFC 1951 (the v2 default).
    #[default]
    Deflate,
    /// Interleaved tabled-ANS; forces a version-3 container.
    Tans,
}

/// Errors from DPZ compression or decompression.
#[derive(Debug, Clone, PartialEq)]
pub enum DpzError {
    /// Malformed or truncated container.
    Corrupt(&'static str),
    /// Failure in a DEFLATE section.
    Deflate(DeflateError),
    /// Numerical failure (eigensolver non-convergence etc.).
    Numeric(String),
    /// Input that cannot be compressed (too small, wrong shape, …).
    BadInput(&'static str),
    /// I/O failure on a streaming source or sink (codec trait paths).
    Io(String),
    /// Rejected configuration (non-positive bound, tolerance outside
    /// `(0, 1)`, unresolved data-dependent target handed to a plan, …).
    InvalidConfig(String),
    /// A fixed-ratio or fixed-PSNR target the control loop could not land
    /// within tolerance for this input.
    TargetUnreachable {
        /// What the caller asked for (ratio, or PSNR in dB).
        requested: f64,
        /// The closest the search/confirmation got.
        achievable: f64,
    },
}

impl std::fmt::Display for DpzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpzError::Corrupt(w) => write!(f, "corrupt DPZ stream: {w}"),
            DpzError::Deflate(e) => write!(f, "DPZ section: {e}"),
            DpzError::Numeric(w) => write!(f, "numerical failure: {w}"),
            DpzError::BadInput(w) => write!(f, "bad input: {w}"),
            DpzError::Io(w) => write!(f, "i/o failure: {w}"),
            DpzError::InvalidConfig(w) => write!(f, "invalid configuration: {w}"),
            DpzError::TargetUnreachable {
                requested,
                achievable,
            } => write!(
                f,
                "quality target unreachable: requested {requested:.3}, best achievable ≈ {achievable:.3}"
            ),
        }
    }
}

impl std::error::Error for DpzError {}

impl From<DeflateError> for DpzError {
    fn from(e: DeflateError) -> Self {
        DpzError::Deflate(e)
    }
}

impl From<dpz_linalg::LinalgError> for DpzError {
    fn from(e: dpz_linalg::LinalgError) -> Self {
        DpzError::Numeric(e.to_string())
    }
}

/// Raw vs. DEFLATE-packed sizes per section — the inputs to the paper's
/// per-stage compression-ratio breakdown (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// PCA basis + means (+ scales) before/after DEFLATE.
    pub model_raw: usize,
    /// Packed model bytes.
    pub model_packed: usize,
    /// Quantizer index stream before/after DEFLATE.
    pub indices_raw: usize,
    /// Packed index bytes.
    pub indices_packed: usize,
    /// Outlier payload before/after DEFLATE.
    pub outliers_raw: usize,
    /// Packed outlier bytes.
    pub outliers_packed: usize,
}

impl SectionSizes {
    /// Total raw bytes entering the lossless stage.
    pub fn total_raw(&self) -> usize {
        self.model_raw + self.indices_raw + self.outliers_raw
    }

    /// Total packed bytes leaving the lossless stage.
    pub fn total_packed(&self) -> usize {
        self.model_packed + self.indices_packed + self.outliers_packed
    }
}

/// Everything the encoder must persist.
#[derive(Debug, Clone)]
pub struct ContainerData {
    /// Original array dimensions.
    pub dims: Vec<usize>,
    /// Original flattened length.
    pub orig_len: usize,
    /// Block count (features).
    pub m: usize,
    /// Block length (samples).
    pub n: usize,
    /// Padding appended during decomposition.
    pub pad: usize,
    /// Offset removed during range normalization (the data minimum).
    pub norm_min: f64,
    /// Scale removed during range normalization (the data range; 1 for
    /// constant data so denormalization is a no-op).
    pub norm_range: f64,
    /// Retained components.
    pub k: usize,
    /// Stage-1 transform tag: 0 = DCT, 1 = DWT.
    pub transform_tag: u8,
    /// DWT levels actually applied (0 for DCT).
    pub dwt_levels: u8,
    /// Quantizer error bound.
    pub p: f64,
    /// Whether features were standardized before PCA.
    pub standardized: bool,
    /// Projection matrix `D` (`M×k`, row-major), as f32.
    pub basis: Vec<f32>,
    /// Feature means (length `M`).
    pub mean: Vec<f32>,
    /// Feature scales (length `M`) when standardized.
    pub scale: Vec<f32>,
    /// Quantized scores.
    pub scores: QuantizedScores,
}

fn push_u64(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

/// Serialize to the current default (version 2, checksummed, DEFLATE)
/// container format, also reporting per-section sizes.
pub fn serialize(data: &ContainerData) -> (Vec<u8>, SectionSizes) {
    serialize_with_backend(data, LosslessBackend::Deflate)
}

/// Serialize with an explicit entropy backend. DEFLATE produces the v2
/// layout byte-for-byte; tANS upgrades the container to v3 with a
/// per-section backend flag (tiny sections stay on DEFLATE — see
/// [`TANS_MIN_SECTION`] — so a v3 stream may legitimately mix coders).
pub fn serialize_with_backend(
    data: &ContainerData,
    backend: LosslessBackend,
) -> (Vec<u8>, SectionSizes) {
    let version = match backend {
        LosslessBackend::Deflate => VERSION,
        LosslessBackend::Tans => VERSION_TANS,
    };
    serialize_as(data, version, backend)
}

/// Serialize to the legacy version-1 layout (no CRC trailers). Kept so the
/// backward-compatibility suite can fabricate genuine v1 streams and so
/// operators can write containers readable by pre-checksum deployments.
pub fn serialize_v1(data: &ContainerData) -> (Vec<u8>, SectionSizes) {
    serialize_as(data, 1, LosslessBackend::Deflate)
}

/// Pack one section under the requested backend, returning the bytes and
/// the flag actually used (the tANS header does not pay for itself on tiny
/// or >4 GiB payloads, so those fall back to DEFLATE).
fn pack_section(raw: &[u8], backend: LosslessBackend) -> (Vec<u8>, LosslessBackend) {
    match backend {
        LosslessBackend::Tans
            if raw.len() >= TANS_MIN_SECTION && raw.len() <= u32::MAX as usize =>
        {
            (tans::compress(raw), LosslessBackend::Tans)
        }
        _ => (
            compress_parallel(raw, CompressionLevel::Default),
            LosslessBackend::Deflate,
        ),
    }
}

fn serialize_as(
    data: &ContainerData,
    version: u8,
    backend: LosslessBackend,
) -> (Vec<u8>, SectionSizes) {
    // Model section: basis ++ mean ++ scale.
    let mut model = Vec::with_capacity((data.basis.len() + 2 * data.mean.len()) * 4);
    for &v in data.basis.iter().chain(&data.mean).chain(&data.scale) {
        model.extend_from_slice(&v.to_le_bytes());
    }
    // DEFLATE sections are multi-member zlib: parallel strips, with small
    // sections falling back to a byte-identical single member (see
    // `dpz_deflate::compress_parallel`). tANS sections are one stream.
    let (model_packed, model_backend) = pack_section(&model, backend);
    let (indices_packed, indices_backend) = pack_section(&data.scores.indices, backend);
    let outlier_bytes: Vec<u8> = data
        .scores
        .outliers
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let (outliers_packed, outliers_backend) = pack_section(&outlier_bytes, backend);

    let sizes = SectionSizes {
        model_raw: model.len(),
        model_packed: model_packed.len(),
        indices_raw: data.scores.indices.len(),
        indices_packed: indices_packed.len(),
        outliers_raw: outlier_bytes.len(),
        outliers_packed: outliers_packed.len(),
    };

    // Per-section CRC-32 trailer for version >= 2 (absent in v1); backend
    // flag byte for version >= 3 (absent before, where DEFLATE is implied).
    let crc_trailer = |out: &mut Vec<u8>, packed: &[u8]| {
        if version >= 2 {
            out.extend_from_slice(&crc32(packed).to_le_bytes());
        }
    };
    let backend_flag = |out: &mut Vec<u8>, b: LosslessBackend| {
        if version >= VERSION_TANS {
            out.push(match b {
                LosslessBackend::Deflate => 0,
                LosslessBackend::Tans => 1,
            });
        }
    };

    let mut out = Vec::with_capacity(sizes.total_packed() + 128);
    out.extend_from_slice(MAGIC);
    out.push(version);
    out.push(data.dims.len() as u8);
    for &d in &data.dims {
        push_u64(&mut out, d);
    }
    push_u64(&mut out, data.orig_len);
    push_u64(&mut out, data.m);
    push_u64(&mut out, data.n);
    push_u64(&mut out, data.pad);
    out.extend_from_slice(&data.norm_min.to_le_bytes());
    out.extend_from_slice(&data.norm_range.to_le_bytes());
    push_u64(&mut out, data.k);
    out.push(data.transform_tag);
    out.push(data.dwt_levels);
    out.extend_from_slice(&data.p.to_le_bytes());
    out.push(u8::from(data.scores.wide_index));
    out.push(u8::from(data.standardized));
    backend_flag(&mut out, model_backend);
    push_u64(&mut out, model.len());
    push_u64(&mut out, model_packed.len());
    out.extend_from_slice(&model_packed);
    crc_trailer(&mut out, &model_packed);
    backend_flag(&mut out, indices_backend);
    push_u64(&mut out, data.scores.indices.len());
    push_u64(&mut out, indices_packed.len());
    out.extend_from_slice(&indices_packed);
    crc_trailer(&mut out, &indices_packed);
    backend_flag(&mut out, outliers_backend);
    push_u64(&mut out, data.scores.outliers.len());
    push_u64(&mut out, outliers_packed.len());
    out.extend_from_slice(&outliers_packed);
    crc_trailer(&mut out, &outliers_packed);
    (out, sizes)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DpzError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DpzError::Corrupt("truncated stream"))?;
        if end > self.buf.len() {
            return Err(DpzError::Corrupt("truncated stream"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DpzError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DpzError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<usize, DpzError> {
        let b = self.take(8)?;
        let v = u64::from_le_bytes(b.try_into().unwrap());
        usize::try_from(v).map_err(|_| DpzError::Corrupt("size overflows usize"))
    }

    fn f64(&mut self) -> Result<f64, DpzError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a section's backend flag: explicit byte in v3+, implicitly
    /// DEFLATE before that.
    fn backend(&mut self, version: u8) -> Result<LosslessBackend, DpzError> {
        if version < VERSION_TANS {
            return Ok(LosslessBackend::Deflate);
        }
        match self.u8()? {
            0 => Ok(LosslessBackend::Deflate),
            1 => Ok(LosslessBackend::Tans),
            _ => Err(DpzError::Corrupt("unknown section backend")),
        }
    }

    /// Read one packed section (`packed_len` + bytes `[+ crc]`), verify the
    /// trailer when present, and unpack it with the flagged backend under
    /// the `expected_raw` bound the validated header implies. The CRC is
    /// checked *before* any entropy decode so corrupt payloads are rejected
    /// at container speed.
    fn section(
        &mut self,
        expected_raw: usize,
        checksummed: bool,
        backend: LosslessBackend,
        what: &'static str,
    ) -> Result<Vec<u8>, DpzError> {
        let packed_len = self.u64()?;
        let packed = self.take(packed_len)?;
        if checksummed {
            let stored = self.u32()?;
            if crc32(packed) != stored {
                return Err(DpzError::Corrupt(what));
            }
        }
        let raw = match backend {
            LosslessBackend::Deflate => decompress_bounded(packed, expected_raw)?,
            LosslessBackend::Tans => tans::decompress_bounded(packed, expected_raw)?,
        };
        if raw.len() != expected_raw {
            return Err(DpzError::Corrupt("section size mismatch"));
        }
        Ok(raw)
    }
}

/// Multiply header-derived sizes with overflow turned into a decode error —
/// the fix for the `dims.iter().product()` panic class.
pub(crate) fn checked_product(factors: &[usize], what: &'static str) -> Result<usize, DpzError> {
    factors
        .iter()
        .try_fold(1usize, |acc, &f| acc.checked_mul(f))
        .ok_or(DpzError::Corrupt(what))
}

fn f32s_from(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Decode-time metadata that is not part of the payload itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Format version byte found in the stream.
    pub version: u8,
    /// Whether per-section CRC-32 trailers were present and verified (always
    /// true for version >= 2 streams — a mismatch is a hard decode error).
    pub checksummed: bool,
    /// How many of the three sections were tANS-coded (0 for v1/v2 streams
    /// and for v3 streams that happened to stay on DEFLATE throughout).
    pub tans_sections: u8,
}

/// Parse a container back into its parts.
pub fn deserialize(bytes: &[u8]) -> Result<ContainerData, DpzError> {
    deserialize_with_info(bytes).map(|(data, _)| data)
}

/// Parse a container, also reporting the format version and checksum status.
pub fn deserialize_with_info(bytes: &[u8]) -> Result<(ContainerData, ContainerInfo), DpzError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    if cur.take(4)? != MAGIC {
        return Err(DpzError::Corrupt("bad magic"));
    }
    let version = cur.u8()?;
    if !(MIN_VERSION..=VERSION_TANS).contains(&version) {
        return Err(DpzError::Corrupt("unsupported version"));
    }
    let checksummed = version >= 2;
    let ndims = cur.u8()? as usize;
    if ndims == 0 || ndims > 8 {
        return Err(DpzError::Corrupt("implausible dimensionality"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(cur.u64()?);
    }
    let orig_len = cur.u64()?;
    let m = cur.u64()?;
    let n = cur.u64()?;
    let pad = cur.u64()?;
    let norm_min = cur.f64()?;
    let norm_range = cur.f64()?;
    let k = cur.u64()?;
    let transform_tag = cur.u8()?;
    let dwt_levels = cur.u8()?;
    if transform_tag > 1 || (transform_tag == 0 && dwt_levels != 0) {
        return Err(DpzError::Corrupt("unknown stage-1 transform"));
    }
    let p = cur.f64()?;
    let wide_index = cur.u8()? != 0;
    let standardized = cur.u8()? != 0;
    // Every size that combines attacker-controlled header fields goes
    // through checked arithmetic: the eight-large-dims header must land in
    // `Corrupt`, not an `attempt to multiply with overflow` panic.
    if checked_product(&dims, "dims overflow")? != orig_len {
        return Err(DpzError::Corrupt("dims do not match length"));
    }
    if m == 0
        || n == 0
        || orig_len
            .checked_add(pad)
            .is_none_or(|padded| m.checked_mul(n) != Some(padded))
    {
        return Err(DpzError::Corrupt("inconsistent block shape"));
    }
    if k == 0 || k > m {
        return Err(DpzError::Corrupt("invalid component count"));
    }
    // `!(x > 0.0)` rather than `x <= 0.0`: NaN must also be rejected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(p > 0.0) || !p.is_finite() {
        return Err(DpzError::Corrupt("invalid error bound"));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !norm_min.is_finite() || !(norm_range > 0.0) || !norm_range.is_finite() {
        return Err(DpzError::Corrupt("invalid normalization"));
    }

    let mk = checked_product(&[m, k], "model size overflow")?;
    let expected_model = mk
        .checked_add(m)
        .and_then(|v| v.checked_add(if standardized { m } else { 0 }))
        .and_then(|v| v.checked_mul(4))
        .ok_or(DpzError::Corrupt("model size overflow"))?;
    let mut tans_sections = 0u8;
    let mut count_tans = |b: LosslessBackend| {
        tans_sections += u8::from(b == LosslessBackend::Tans);
        b
    };

    let model_backend = count_tans(cur.backend(version)?);
    let model_raw = cur.u64()?;
    if model_raw != expected_model {
        return Err(DpzError::Corrupt("model section shape mismatch"));
    }
    let model = cur.section(
        expected_model,
        checksummed,
        model_backend,
        "model section checksum mismatch",
    )?;
    let model_f = f32s_from(&model);
    let basis = model_f[..mk].to_vec();
    let mean = model_f[mk..mk + m].to_vec();
    let scale = if standardized {
        model_f[mk + m..].to_vec()
    } else {
        Vec::new()
    };

    let index_width = if wide_index { 2 } else { 1 };
    let nk = checked_product(&[n, k], "index size overflow")?;
    let expected_indices = checked_product(&[nk, index_width], "index size overflow")?;
    let indices_backend = count_tans(cur.backend(version)?);
    let indices_raw = cur.u64()?;
    if indices_raw != expected_indices {
        return Err(DpzError::Corrupt("index stream length mismatch"));
    }
    let indices = cur.section(
        expected_indices,
        checksummed,
        indices_backend,
        "index section checksum mismatch",
    )?;

    let outliers_backend = count_tans(cur.backend(version)?);
    let n_outliers = cur.u64()?;
    // Outliers are escaped scores, so there can never be more than n·k.
    if n_outliers > nk {
        return Err(DpzError::Corrupt("implausible outlier count"));
    }
    let expected_outliers = checked_product(&[n_outliers, 4], "outlier size overflow")?;
    let outlier_bytes = cur.section(
        expected_outliers,
        checksummed,
        outliers_backend,
        "outlier section checksum mismatch",
    )?;
    let outliers = f32s_from(&outlier_bytes);

    let bins = if wide_index {
        u32::from(u16::MAX)
    } else {
        u32::from(u8::MAX)
    };
    let scores = QuantizedScores {
        indices,
        wide_index,
        outliers,
        p,
        bins,
        len: nk,
    };
    let data = ContainerData {
        dims,
        orig_len,
        m,
        n,
        pad,
        norm_min,
        norm_range,
        k,
        transform_tag,
        dwt_levels,
        p,
        standardized,
        basis,
        mean,
        scale,
        scores,
    };
    Ok((
        data,
        ContainerInfo {
            version,
            checksummed,
            tans_sections,
        },
    ))
}

/// Magic for the progressive ("DPZP") inner stream: the same model as a
/// DPZ1 container, but with the index/outlier payload split per PCA
/// component so a prefix of the stream decodes to a coarse reconstruction.
pub(crate) const PROGRESSIVE_MAGIC: &[u8; 4] = b"DPZP";
/// Only progressive stream version so far.
pub(crate) const PROGRESSIVE_VERSION: u8 = 1;

/// Byte span of one energy-ordered component inside a progressive stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentSpan {
    /// Exclusive end offset of the component's sections, relative to the
    /// start of the stream. Component `i` occupies `prev_end..end`.
    pub end: usize,
    /// Captured energy: the sum of squared dequantized scores this
    /// component contributes across all rows.
    pub energy: f64,
}

/// Byte layout of a progressive stream, as recorded in the DPZC v4 footer
/// so readers can budget a prefix without parsing the stream itself.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgressiveLayout {
    /// End offset of the header + model section (= start of component 0).
    pub model_end: usize,
    /// Per-component spans in stored order (energy-descending).
    pub components: Vec<ComponentSpan>,
}

/// Serialize to the progressive layout: the DPZ1 header fields under the
/// `DPZP` magic, the whole model section first (mandatory for any decode),
/// then one `(column id, indices, outliers)` section group per PCA
/// component, ordered by descending captured energy. Sections are always
/// DEFLATE with CRC-32 trailers — a prefix cannot be guarded by a
/// whole-stream checksum, so every section carries its own.
pub fn serialize_progressive(data: &ContainerData) -> (Vec<u8>, ProgressiveLayout) {
    let (n, k) = (data.n, data.k);
    let width = if data.scores.wide_index { 2 } else { 1 };
    let escape = data.scores.bins as u16;
    // Split the row-major n×k index stream into per-column streams, routing
    // each escape's outlier (stored in scan order) to its owning column.
    let mut col_indices: Vec<Vec<u8>> = vec![Vec::with_capacity(n * width); k];
    let mut col_outliers: Vec<Vec<f32>> = vec![Vec::new(); k];
    let mut next_outlier = data.scores.outliers.iter();
    for row in 0..n {
        for col in 0..k {
            let off = (row * k + col) * width;
            let cell = &data.scores.indices[off..off + width];
            col_indices[col].extend_from_slice(cell);
            let code = if width == 2 {
                u16::from_le_bytes([cell[0], cell[1]])
            } else {
                u16::from(cell[0])
            };
            if code == escape {
                if let Some(&v) = next_outlier.next() {
                    col_outliers[col].push(v);
                }
            }
        }
    }
    // Captured energy per component = Σ over rows of the dequantized
    // score². Ties (and NaNs from non-finite outliers) keep PCA order —
    // the sort is stable.
    let vals = dequantize_scores(&data.scores);
    let energy: Vec<f64> = (0..k)
        .map(|c| {
            (0..n)
                .map(|r| {
                    let v = vals[r * k + c];
                    v * v
                })
                .sum()
        })
        .collect();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        energy[b]
            .partial_cmp(&energy[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let section = |out: &mut Vec<u8>, declared: usize, raw: &[u8]| {
        let packed = compress_parallel(raw, CompressionLevel::Default);
        push_u64(out, declared);
        push_u64(out, packed.len());
        out.extend_from_slice(&packed);
        out.extend_from_slice(&crc32(&packed).to_le_bytes());
    };

    let mut out = Vec::new();
    out.extend_from_slice(PROGRESSIVE_MAGIC);
    out.push(PROGRESSIVE_VERSION);
    out.push(data.dims.len() as u8);
    for &d in &data.dims {
        push_u64(&mut out, d);
    }
    push_u64(&mut out, data.orig_len);
    push_u64(&mut out, data.m);
    push_u64(&mut out, data.n);
    push_u64(&mut out, data.pad);
    out.extend_from_slice(&data.norm_min.to_le_bytes());
    out.extend_from_slice(&data.norm_range.to_le_bytes());
    push_u64(&mut out, data.k);
    out.push(data.transform_tag);
    out.push(data.dwt_levels);
    out.extend_from_slice(&data.p.to_le_bytes());
    out.push(u8::from(data.scores.wide_index));
    out.push(u8::from(data.standardized));

    let mut model = Vec::with_capacity((data.basis.len() + 2 * data.mean.len()) * 4);
    for &v in data.basis.iter().chain(&data.mean).chain(&data.scale) {
        model.extend_from_slice(&v.to_le_bytes());
    }
    section(&mut out, model.len(), &model);
    let model_end = out.len();

    let mut layout = ProgressiveLayout {
        model_end,
        components: Vec::with_capacity(k),
    };
    for &col in &order {
        push_u64(&mut out, col);
        section(&mut out, col_indices[col].len(), &col_indices[col]);
        let ob: Vec<u8> = col_outliers[col]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        section(&mut out, col_outliers[col].len(), &ob);
        layout.components.push(ComponentSpan {
            end: out.len(),
            energy: energy[col],
        });
    }
    (out, layout)
}

/// Parse a progressive stream, reconstructing a [`ContainerData`] from the
/// first `max_components` stored components (all of them when `None`).
/// Returns the payload — with `k` shrunk to the decoded component count and
/// the basis/index/outlier payload reassembled to match — plus the number
/// of components actually used. A truncated stream that still contains the
/// model and at least the requested components decodes fine: parsing never
/// looks past the last section it needs.
pub fn deserialize_progressive(
    bytes: &[u8],
    max_components: Option<usize>,
) -> Result<(ContainerData, usize), DpzError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    if cur.take(4)? != PROGRESSIVE_MAGIC {
        return Err(DpzError::Corrupt("bad magic"));
    }
    if cur.u8()? != PROGRESSIVE_VERSION {
        return Err(DpzError::Corrupt("unsupported version"));
    }
    let ndims = cur.u8()? as usize;
    if ndims == 0 || ndims > 8 {
        return Err(DpzError::Corrupt("implausible dimensionality"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(cur.u64()?);
    }
    let orig_len = cur.u64()?;
    let m = cur.u64()?;
    let n = cur.u64()?;
    let pad = cur.u64()?;
    let norm_min = cur.f64()?;
    let norm_range = cur.f64()?;
    let k = cur.u64()?;
    let transform_tag = cur.u8()?;
    let dwt_levels = cur.u8()?;
    if transform_tag > 1 || (transform_tag == 0 && dwt_levels != 0) {
        return Err(DpzError::Corrupt("unknown stage-1 transform"));
    }
    let p = cur.f64()?;
    let wide_index = cur.u8()? != 0;
    let standardized = cur.u8()? != 0;
    if checked_product(&dims, "dims overflow")? != orig_len {
        return Err(DpzError::Corrupt("dims do not match length"));
    }
    if m == 0
        || n == 0
        || orig_len
            .checked_add(pad)
            .is_none_or(|padded| m.checked_mul(n) != Some(padded))
    {
        return Err(DpzError::Corrupt("inconsistent block shape"));
    }
    if k == 0 || k > m {
        return Err(DpzError::Corrupt("invalid component count"));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(p > 0.0) || !p.is_finite() {
        return Err(DpzError::Corrupt("invalid error bound"));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !norm_min.is_finite() || !(norm_range > 0.0) || !norm_range.is_finite() {
        return Err(DpzError::Corrupt("invalid normalization"));
    }

    let mk = checked_product(&[m, k], "model size overflow")?;
    let expected_model = mk
        .checked_add(m)
        .and_then(|v| v.checked_add(if standardized { m } else { 0 }))
        .and_then(|v| v.checked_mul(4))
        .ok_or(DpzError::Corrupt("model size overflow"))?;
    let model_raw = cur.u64()?;
    if model_raw != expected_model {
        return Err(DpzError::Corrupt("model section shape mismatch"));
    }
    let model = cur.section(
        expected_model,
        true,
        LosslessBackend::Deflate,
        "model section checksum mismatch",
    )?;
    let model_f = f32s_from(&model);
    let full_basis = &model_f[..mk];
    let mean = model_f[mk..mk + m].to_vec();
    let scale = if standardized {
        model_f[mk + m..].to_vec()
    } else {
        Vec::new()
    };

    let take_k = max_components.unwrap_or(k).min(k).max(1);
    let width = if wide_index { 2 } else { 1 };
    let per_col_indices = checked_product(&[n, width], "index size overflow")?;
    let escape = if wide_index {
        u16::MAX
    } else {
        u16::from(u8::MAX)
    };

    let mut cols = Vec::with_capacity(take_k);
    let mut col_streams: Vec<Vec<u8>> = Vec::with_capacity(take_k);
    let mut col_outliers: Vec<Vec<f32>> = Vec::with_capacity(take_k);
    let mut seen = vec![false; k];
    for _ in 0..take_k {
        let col = cur.u64()?;
        if col >= k || seen[col] {
            return Err(DpzError::Corrupt("invalid progressive column id"));
        }
        seen[col] = true;
        let idx_raw = cur.u64()?;
        if idx_raw != per_col_indices {
            return Err(DpzError::Corrupt("index stream length mismatch"));
        }
        let stream = cur.section(
            per_col_indices,
            true,
            LosslessBackend::Deflate,
            "index section checksum mismatch",
        )?;
        let n_escapes = stream
            .chunks_exact(width)
            .filter(|c| {
                let code = if width == 2 {
                    u16::from_le_bytes([c[0], c[1]])
                } else {
                    u16::from(c[0])
                };
                code == escape
            })
            .count();
        let n_out = cur.u64()?;
        if n_out != n_escapes {
            return Err(DpzError::Corrupt("implausible outlier count"));
        }
        let ob = cur.section(
            checked_product(&[n_out, 4], "outlier size overflow")?,
            true,
            LosslessBackend::Deflate,
            "outlier section checksum mismatch",
        )?;
        cols.push(col);
        col_streams.push(stream);
        col_outliers.push(f32s_from(&ob));
    }

    // Reassemble a row-major n×take_k index stream and scan-order outliers.
    let mut indices = Vec::with_capacity(n * take_k * width);
    let mut outliers = Vec::new();
    let mut next: Vec<std::slice::Iter<'_, f32>> = col_outliers.iter().map(|v| v.iter()).collect();
    for row in 0..n {
        for (j, stream) in col_streams.iter().enumerate() {
            let cell = &stream[row * width..(row + 1) * width];
            indices.extend_from_slice(cell);
            let code = if width == 2 {
                u16::from_le_bytes([cell[0], cell[1]])
            } else {
                u16::from(cell[0])
            };
            if code == escape {
                // Count was validated against the escapes above.
                outliers.push(
                    *next[j]
                        .next()
                        .ok_or(DpzError::Corrupt("implausible outlier count"))?,
                );
            }
        }
    }
    // Select the decoded components' basis columns, in stored order.
    let mut basis = Vec::with_capacity(m * take_k);
    for i in 0..m {
        for &c in &cols {
            basis.push(full_basis[i * k + c]);
        }
    }

    let bins = if wide_index {
        u32::from(u16::MAX)
    } else {
        u32::from(u8::MAX)
    };
    let scores = QuantizedScores {
        indices,
        wide_index,
        outliers,
        p,
        bins,
        len: n * take_k,
    };
    Ok((
        ContainerData {
            dims,
            orig_len,
            m,
            n,
            pad,
            norm_min,
            norm_range,
            k: take_k,
            transform_tag,
            dwt_levels,
            p,
            standardized,
            basis,
            mean,
            scale,
            scores,
        },
        take_k,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::quantize::quantize_scores;

    fn sample_container() -> ContainerData {
        let scores: Vec<f64> = (0..40).map(|i| (i as f64 * 0.31).sin() * 0.1).collect();
        let q = quantize_scores(&scores, Scheme::Loose);
        ContainerData {
            dims: vec![10, 8],
            orig_len: 80,
            m: 8,
            n: 10,
            pad: 0,
            norm_min: -1.5,
            norm_range: 3.0,
            k: 4,
            transform_tag: 0,
            dwt_levels: 0,
            p: Scheme::Loose.p(),
            standardized: false,
            basis: (0..32).map(|i| i as f32 * 0.01).collect(),
            mean: vec![0.5; 8],
            scale: vec![],
            scores: q,
        }
    }

    #[test]
    fn round_trip() {
        let data = sample_container();
        let (bytes, sizes) = serialize(&data);
        assert!(sizes.total_raw() > 0);
        let parsed = deserialize(&bytes).unwrap();
        assert_eq!(parsed.dims, data.dims);
        assert_eq!(parsed.k, 4);
        assert_eq!(parsed.basis, data.basis);
        assert_eq!(parsed.mean, data.mean);
        assert_eq!(parsed.scores, data.scores);
    }

    #[test]
    fn round_trip_with_scale() {
        let mut data = sample_container();
        data.standardized = true;
        data.scale = vec![2.0; 8];
        let (bytes, _) = serialize(&data);
        let parsed = deserialize(&bytes).unwrap();
        assert!(parsed.standardized);
        assert_eq!(parsed.scale, data.scale);
    }

    #[test]
    fn rejects_bad_magic() {
        let (mut bytes, _) = serialize(&sample_container());
        bytes[0] = b'X';
        assert!(matches!(
            deserialize(&bytes),
            Err(DpzError::Corrupt("bad magic"))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let (bytes, _) = serialize(&sample_container());
        for cut in [0, 3, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(deserialize(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_inconsistent_header() {
        let mut data = sample_container();
        data.k = 0;
        let (bytes, _) = serialize(&data);
        assert!(deserialize(&bytes).is_err());
        let mut data = sample_container();
        data.orig_len = 81; // dims product mismatch
        let (bytes, _) = serialize(&data);
        assert!(deserialize(&bytes).is_err());
    }

    #[test]
    fn v2_streams_carry_crc_trailers_and_report_checksummed() {
        let data = sample_container();
        let (v2, _) = serialize(&data);
        let (v1, _) = serialize_v1(&data);
        // Three u32 trailers is the only layout difference.
        assert_eq!(v2.len(), v1.len() + 12);
        let (_, info) = deserialize_with_info(&v2).unwrap();
        assert_eq!(
            info,
            ContainerInfo {
                version: 2,
                checksummed: true,
                tans_sections: 0
            }
        );
    }

    #[test]
    fn v1_streams_still_decode() {
        let data = sample_container();
        let (bytes, _) = serialize_v1(&data);
        let (parsed, info) = deserialize_with_info(&bytes).unwrap();
        assert_eq!(
            info,
            ContainerInfo {
                version: 1,
                checksummed: false,
                tans_sections: 0
            }
        );
        assert_eq!(parsed.dims, data.dims);
        assert_eq!(parsed.basis, data.basis);
        assert_eq!(parsed.scores, data.scores);
    }

    #[test]
    fn corrupted_packed_section_fails_crc() {
        let (bytes, sizes) = serialize(&sample_container());
        // Flip a byte inside the packed model payload: the stored CRC no
        // longer matches, and decode must say so (not an inflate error).
        let mut corrupt = bytes.clone();
        let model_start = bytes.len() - 12 // three crc trailers
            - sizes.outliers_packed - 16
            - sizes.indices_packed - 16
            - sizes.model_packed;
        corrupt[model_start + sizes.model_packed / 2] ^= 0xFF;
        assert!(matches!(
            deserialize(&corrupt),
            Err(DpzError::Corrupt("model section checksum mismatch"))
        ));
    }

    /// A container whose index stream is large enough to clear
    /// [`TANS_MIN_SECTION`], so the tANS backend actually engages.
    fn bulky_container() -> ContainerData {
        // Mostly-zero scores quantize to a heavily skewed index stream —
        // the shape tANS is good at.
        let scores: Vec<f64> = (0..4000)
            .map(|i| if i % 13 == 0 { 0.05 } else { 0.0 })
            .collect();
        let q = quantize_scores(&scores, Scheme::Loose);
        ContainerData {
            dims: vec![100, 80],
            orig_len: 8000,
            m: 8,
            n: 1000,
            pad: 0,
            norm_min: 0.0,
            norm_range: 1.0,
            k: 4,
            transform_tag: 0,
            dwt_levels: 0,
            p: Scheme::Loose.p(),
            standardized: false,
            basis: (0..32).map(|i| i as f32 * 0.01).collect(),
            mean: vec![0.5; 8],
            scale: vec![],
            scores: q,
        }
    }

    #[test]
    fn tans_backend_round_trips_as_v3() {
        let data = bulky_container();
        let (bytes, sizes) = serialize_with_backend(&data, LosslessBackend::Tans);
        assert_eq!(bytes[4], 3, "tANS output must be a v3 container");
        assert!(sizes.indices_packed < sizes.indices_raw);
        let (parsed, info) = deserialize_with_info(&bytes).unwrap();
        assert_eq!(info.version, 3);
        assert!(info.checksummed);
        assert!(
            info.tans_sections >= 1,
            "the 4000-byte index stream must have used tANS"
        );
        assert_eq!(parsed.scores, data.scores);
        assert_eq!(parsed.basis, data.basis);
    }

    #[test]
    fn deflate_backend_stays_byte_identical_to_v2() {
        let data = bulky_container();
        let (default_bytes, _) = serialize(&data);
        let (explicit, _) = serialize_with_backend(&data, LosslessBackend::Deflate);
        assert_eq!(default_bytes, explicit);
        assert_eq!(default_bytes[4], 2);
    }

    #[test]
    fn v3_sections_below_threshold_fall_back_to_deflate() {
        // Every section of the small sample is under TANS_MIN_SECTION, so a
        // tANS request still produces DEFLATE sections — in a v3 frame.
        let (bytes, _) = serialize_with_backend(&sample_container(), LosslessBackend::Tans);
        assert_eq!(bytes[4], 3);
        let (_, info) = deserialize_with_info(&bytes).unwrap();
        assert_eq!(info.tans_sections, 0);
    }

    #[test]
    fn unknown_backend_flag_is_rejected() {
        let data = bulky_container();
        let (mut bytes, _) = serialize_with_backend(&data, LosslessBackend::Tans);
        // The model section's flag byte sits right after the fixed header.
        let header_len = 4 + 1 + 1 + 8 * data.dims.len() + 8 * 4 + 8 * 2 + 8 + 1 + 1 + 8 + 1 + 1;
        assert!(bytes[header_len] <= 1);
        bytes[header_len] = 7;
        assert!(matches!(
            deserialize(&bytes),
            Err(DpzError::Corrupt("unknown section backend"))
        ));
    }

    #[test]
    fn corrupt_tans_section_fails_crc_before_decode() {
        let data = bulky_container();
        let (bytes, _) = serialize_with_backend(&data, LosslessBackend::Tans);
        // Flip one byte near the end of the index payload (inside the tANS
        // bitstream): the CRC must catch it.
        let mut corrupt = bytes.clone();
        let off = corrupt.len() - 60;
        corrupt[off] ^= 0xFF;
        assert!(deserialize(&corrupt).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let (mut bytes, _) = serialize(&sample_container());
        bytes[4] = 9;
        assert!(matches!(
            deserialize(&bytes),
            Err(DpzError::Corrupt("unsupported version"))
        ));
    }

    #[test]
    fn overflowing_dims_header_is_corrupt_not_panic() {
        // Regression: eight near-max dims used to hit `attempt to multiply
        // with overflow` in debug builds via `dims.iter().product()`.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        bytes.push(8); // ndims
        for _ in 0..8 {
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        // Enough trailing zeros to reach the dims-product check.
        bytes.extend_from_slice(&[0u8; 128]);
        assert!(matches!(
            deserialize(&bytes),
            Err(DpzError::Corrupt("dims overflow"))
        ));
    }

    #[test]
    fn huge_declared_section_len_is_error_not_allocation() {
        // A valid header followed by a section whose packed_len claims more
        // bytes than the stream holds must fail as truncation, and a
        // packed_len near usize::MAX must not overflow cursor math.
        let data = sample_container();
        let (bytes, _) = serialize(&data);
        // Locate the model packed_len field: header is fixed-size up to it.
        let header_len = 4 + 1 + 1 + 8 * data.dims.len() + 8 * 4 + 8 * 2 + 8 + 1 + 1 + 8 + 1 + 1;
        let packed_len_off = header_len + 8; // after model_raw
        let mut evil = bytes.clone();
        evil[packed_len_off..packed_len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(deserialize(&evil).is_err());
        let mut evil = bytes;
        evil[packed_len_off..packed_len_off + 8].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        assert!(deserialize(&evil).is_err());
    }

    #[test]
    fn section_sizes_add_up() {
        let (_, sizes) = serialize(&sample_container());
        assert_eq!(
            sizes.total_raw(),
            sizes.model_raw + sizes.indices_raw + sizes.outliers_raw
        );
        assert!(sizes.total_packed() > 0);
    }

    #[test]
    fn progressive_full_decode_matches_original_scores() {
        let data = sample_container();
        let (bytes, layout) = serialize_progressive(&data);
        assert_eq!(layout.components.len(), data.k);
        assert_eq!(layout.components.last().unwrap().end, bytes.len());
        // Energies are stored in descending order.
        for w in layout.components.windows(2) {
            assert!(w[0].energy >= w[1].energy);
        }
        let (full, used) = deserialize_progressive(&bytes, None).unwrap();
        assert_eq!(used, data.k);
        assert_eq!(full.dims, data.dims);
        // All components present ⇒ the dequantized score grid matches the
        // original up to column permutation; check total energy instead of
        // byte equality.
        let orig = dequantize_scores(&data.scores);
        let got = dequantize_scores(&full.scores);
        let e = |v: &[f64]| v.iter().map(|&x| x * x).sum::<f64>();
        assert!((e(&orig) - e(&got)).abs() < 1e-9);
    }

    #[test]
    fn progressive_prefix_decodes_with_fewer_components() {
        let data = sample_container();
        let (bytes, layout) = serialize_progressive(&data);
        // A prefix holding the model + first two components is enough.
        let prefix = &bytes[..layout.components[1].end];
        let (partial, used) = deserialize_progressive(prefix, Some(2)).unwrap();
        assert_eq!(used, 2);
        assert_eq!(partial.k, 2);
        assert_eq!(partial.basis.len(), partial.m * 2);
        assert_eq!(partial.scores.len, partial.n * 2);
        // But three components cannot come out of that prefix.
        assert!(deserialize_progressive(prefix, Some(3)).is_err());
    }

    #[test]
    fn progressive_rejects_corrupt_column_ids_and_crc() {
        let data = sample_container();
        let (bytes, layout) = serialize_progressive(&data);
        // The first component's column-id u64 sits right at model_end.
        let mut evil = bytes.clone();
        evil[layout.model_end..layout.model_end + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            deserialize_progressive(&evil, None),
            Err(DpzError::Corrupt("invalid progressive column id"))
        ));
        // A flipped byte inside a component payload trips that section's CRC.
        let mut evil = bytes;
        let mid = (layout.model_end + layout.components[0].end) / 2;
        evil[mid] ^= 0xFF;
        assert!(deserialize_progressive(&evil, None).is_err());
    }
}
