//! The stage-graph engine: a generic, observable composition substrate for
//! multi-stage codecs.
//!
//! Every DPZ entry point — [`crate::pipeline::compress`],
//! [`crate::chunked::compress_chunked`], the instrumented
//! [`crate::pipeline::compress_with_breakdown`], and the transform-combination
//! study in [`crate::combos`] — is a *composition of stages* over a shared
//! mutable context, driven by one engine:
//!
//! * [`Stage`] is one step (decompose, PCA, quantize, …) operating on a
//!   caller-defined context type `Ctx`.
//! * [`StageGraph`] runs a sequence of stages, emitting one telemetry span
//!   per stage (named after the stage, so per-stage span names come from the
//!   graph rather than from hand-written instrumentation), collecting a
//!   per-stage wall-clock [`StageTrace`], and offering a **tap**: a callback
//!   invoked between stages, which is how the breakdown path observes
//!   intermediate products without duplicating stage bodies.
//! * [`BufferPool`] recycles the large `f64` scratch buffers (block
//!   matrices) across executions — and across rayon workers in the chunked
//!   driver — extending the PR 2 allocation discipline to the whole
//!   pipeline.
//!
//! The engine is deliberately dumb: stages run in order, the first error
//! aborts the run. Determinism is part of the contract — the engine adds no
//! reordering or speculation, so a stage graph produces byte-identical
//! artifacts to the straight-line code it replaced.

use crate::container::DpzError;
use std::sync::Mutex;
use std::time::Duration;

/// One step of a stage graph: a named transformation of the shared context.
///
/// Implementations should be cheap to construct (most are zero-sized) and
/// keep per-shape planning out of `execute` — that is the job of the plan
/// object that builds the graph (see [`crate::pipeline::PipelinePlan`]).
pub trait Stage<Ctx: ?Sized>: Send + Sync {
    /// Stable stage name; becomes the telemetry span name and the
    /// [`StageTrace`] key.
    fn name(&self) -> &'static str;

    /// Run the stage against the context.
    fn execute(&self, ctx: &mut Ctx) -> Result<(), DpzError>;

    /// Annotations for the stage's journal event (buffer sizes, selected
    /// ranks, …), sampled from the context after `execute` returns. Only
    /// consulted when the event journal is enabled; at most
    /// [`dpz_telemetry::trace::MAX_ARGS`] stick.
    fn trace_args(&self, _ctx: &Ctx) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Per-stage wall-clock record of one graph execution.
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    entries: Vec<(&'static str, Duration)>,
}

impl StageTrace {
    /// Wall-clock spent in the named stage (zero when it did not run).
    pub fn duration(&self, name: &str) -> Duration {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// All `(stage, duration)` entries in execution order.
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.entries
    }

    /// Total wall-clock across all stages.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }
}

/// An ordered composition of [`Stage`]s over a shared context type.
pub struct StageGraph<Ctx: ?Sized> {
    stages: Vec<Box<dyn Stage<Ctx>>>,
}

impl<Ctx: ?Sized> Default for StageGraph<Ctx> {
    fn default() -> Self {
        StageGraph { stages: Vec::new() }
    }
}

impl<Ctx: ?Sized> StageGraph<Ctx> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage (builder style).
    pub fn then(mut self, stage: impl Stage<Ctx> + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Names of the composed stages, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run every stage in order, spanning and timing each one.
    pub fn run(&self, ctx: &mut Ctx) -> Result<StageTrace, DpzError> {
        self.run_with_tap(ctx, |_, _| {})
    }

    /// [`StageGraph::run`] with a tap invoked after each stage completes.
    ///
    /// The tap receives the stage name and the context, *outside* the
    /// stage's span/timing window — observation cost is not billed to the
    /// stage. This is how instrumented variants (per-stage accuracy
    /// breakdowns, progress reporting) ride the same graph instead of
    /// duplicating its bodies.
    pub fn run_with_tap(
        &self,
        ctx: &mut Ctx,
        mut tap: impl FnMut(&'static str, &mut Ctx),
    ) -> Result<StageTrace, DpzError> {
        let mut trace = StageTrace::default();
        for stage in &self.stages {
            let mut span = dpz_telemetry::span::span(stage.name());
            stage.execute(ctx)?;
            if dpz_telemetry::trace::journal_enabled() {
                for (key, value) in stage.trace_args(ctx) {
                    span.annotate(key, value);
                }
            }
            trace.entries.push((stage.name(), span.elapsed()));
            drop(span);
            tap(stage.name(), ctx);
        }
        Ok(trace)
    }
}

/// Largest number of idle buffers a pool retains; beyond this, released
/// buffers are dropped (steady-state pipelines never exceed a handful).
const POOL_MAX_IDLE: usize = 8;

/// A shared free-list of `f64` scratch buffers.
///
/// The stage-1 block matrix is the pipeline's largest transient allocation
/// (`M·N` doubles — the input itself, widened). Re-executing a plan, or
/// compressing many chunks through shared plans, would otherwise allocate
/// and free it once per buffer; the pool recycles those backing stores. It
/// is `Mutex`-protected so rayon workers in the chunked driver can share
/// one pool — contention is negligible because acquire/release happen once
/// per chunk, not per element.
#[derive(Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<f64>>>,
}

/// Cached handles for the pool's global metrics, resolved once.
struct PoolMetrics {
    reuse: std::sync::Arc<dpz_telemetry::Counter>,
    miss: std::sync::Arc<dpz_telemetry::Counter>,
    idle: std::sync::Arc<dpz_telemetry::Gauge>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = dpz_telemetry::global();
        PoolMetrics {
            reuse: r.counter("dpz_buffer_pool_reuse_total"),
            miss: r.counter("dpz_buffer_pool_miss_total"),
            idle: r.gauge("dpz_buffer_pool_idle"),
        }
    })
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a buffer of exactly `len` elements (contents unspecified, but
    /// every element is initialized). Reuses the largest-capacity idle
    /// buffer when one exists.
    pub fn acquire(&self, len: usize) -> Vec<f64> {
        let (reused, idle_left) = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            let reused = (0..free.len())
                .max_by_key(|&i| free[i].capacity())
                .map(|i| free.swap_remove(i));
            (reused, free.len())
        };
        let metrics = pool_metrics();
        metrics.idle.set(idle_left as f64);
        match reused {
            Some(mut buf) => {
                metrics.reuse.inc();
                dpz_telemetry::trace::counter(
                    "dpz_buffer_pool_reuse_total",
                    metrics.reuse.get() as f64,
                );
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                metrics.miss.inc();
                dpz_telemetry::trace::counter(
                    "dpz_buffer_pool_miss_total",
                    metrics.miss.get() as f64,
                );
                vec![0.0; len]
            }
        }
    }

    /// Return a buffer to the pool for reuse.
    pub fn release(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let idle = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            if free.len() < POOL_MAX_IDLE {
                free.push(buf);
            }
            free.len()
        };
        pool_metrics().idle.set(idle as f64);
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Push(&'static str, i32);

    impl Stage<Vec<i32>> for Push {
        fn name(&self) -> &'static str {
            self.0
        }
        fn execute(&self, ctx: &mut Vec<i32>) -> Result<(), DpzError> {
            if self.1 < 0 {
                return Err(DpzError::BadInput("negative"));
            }
            ctx.push(self.1);
            Ok(())
        }
    }

    #[test]
    fn stages_run_in_order_and_are_timed() {
        let graph = StageGraph::new()
            .then(Push("a", 1))
            .then(Push("b", 2))
            .then(Push("c", 3));
        assert_eq!(graph.stage_names(), vec!["a", "b", "c"]);
        assert_eq!(graph.len(), 3);
        let mut ctx = Vec::new();
        let trace = graph.run(&mut ctx).unwrap();
        assert_eq!(ctx, vec![1, 2, 3]);
        assert_eq!(trace.entries().len(), 3);
        assert_eq!(trace.duration("nope"), Duration::ZERO);
        assert!(trace.total() >= trace.duration("a"));
    }

    #[test]
    fn error_aborts_remaining_stages() {
        let graph = StageGraph::new()
            .then(Push("ok", 1))
            .then(Push("bad", -1))
            .then(Push("never", 9));
        let mut ctx = Vec::new();
        assert!(graph.run(&mut ctx).is_err());
        assert_eq!(ctx, vec![1], "stages after the failure must not run");
    }

    #[test]
    fn tap_sees_every_stage_boundary() {
        let graph = StageGraph::new().then(Push("a", 1)).then(Push("b", 2));
        let mut ctx = Vec::new();
        let mut seen = Vec::new();
        graph
            .run_with_tap(&mut ctx, |name, c: &mut Vec<i32>| {
                seen.push((name, c.len()));
            })
            .unwrap();
        assert_eq!(seen, vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn stage_spans_use_stage_names() {
        let before = dpz_telemetry::global().snapshot();
        let graph = StageGraph::new().then(Push("stagegraph_span_probe", 7));
        graph.run(&mut Vec::new()).unwrap();
        let delta = dpz_telemetry::global().snapshot().since(&before);
        let h = delta
            .histogram("dpz_span_seconds", &[("span", "stagegraph_span_probe")])
            .expect("span series derived from the stage name");
        assert!(h.count >= 1);
    }

    #[test]
    fn buffer_pool_recycles_backing_stores() {
        let pool = BufferPool::new();
        let a = pool.acquire(1024);
        let ptr = a.as_ptr();
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire(512);
        assert_eq!(b.as_ptr(), ptr, "smaller request reuses the same store");
        assert_eq!(b.len(), 512);
        pool.release(b);
        let c = pool.acquire(4096); // larger: may reallocate, must still work
        assert_eq!(c.len(), 4096);
    }

    #[test]
    fn buffer_pool_bounds_idle_buffers() {
        let pool = BufferPool::new();
        for _ in 0..32 {
            pool.release(vec![0.0; 16]);
        }
        assert!(pool.idle() <= POOL_MAX_IDLE);
    }

    #[test]
    fn buffer_pool_exports_reuse_miss_metrics() {
        let before = dpz_telemetry::global().snapshot();
        let pool = BufferPool::new();
        let a = pool.acquire(64); // miss: empty pool
        pool.release(a);
        let b = pool.acquire(32); // reuse
        drop(b);
        let delta = dpz_telemetry::global().snapshot().since(&before);
        assert!(
            delta
                .counter("dpz_buffer_pool_miss_total", &[])
                .unwrap_or(0)
                >= 1
        );
        assert!(
            delta
                .counter("dpz_buffer_pool_reuse_total", &[])
                .unwrap_or(0)
                >= 1
        );
    }

    struct Sized(&'static str);

    impl Stage<Vec<i32>> for Sized {
        fn name(&self) -> &'static str {
            self.0
        }
        fn execute(&self, ctx: &mut Vec<i32>) -> Result<(), DpzError> {
            ctx.extend_from_slice(&[1, 2, 3]);
            Ok(())
        }
        fn trace_args(&self, ctx: &Vec<i32>) -> Vec<(&'static str, f64)> {
            vec![("bytes", (ctx.len() * 4) as f64)]
        }
    }

    #[test]
    fn stage_journal_events_carry_trace_args() {
        dpz_telemetry::trace::start();
        let graph = StageGraph::new().then(Sized("stagegraph_journal_probe"));
        graph.run(&mut Vec::new()).unwrap();
        dpz_telemetry::trace::stop();
        let trace = dpz_telemetry::trace::drain();
        let ev = trace
            .events
            .iter()
            .find(|e| e.name.ends_with("stagegraph_journal_probe"))
            .expect("stage event in journal");
        assert_eq!(ev.args, vec![("bytes".to_string(), 12.0)]);
    }
}
