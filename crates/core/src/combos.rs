//! Transform-combination study (Section III-B / Figure 4 of the paper).
//!
//! To motivate the PCA-on-DCT ordering, the paper compares four retrieval
//! pipelines at a fixed keep fraction (20 % of features ≈ 5× ratio):
//! DCT alone, PCA alone, DCT applied to PCA components, and PCA applied to
//! DCT coefficients. Feature selection always happens in the *final* stage;
//! earlier stages are lossless orthogonal rotations. This module implements
//! all four so the figure (and the ablation bench) can regenerate the
//! result that PCA∘DCT introduces the least error.
//!
//! Each pipeline is a [`StageGraph`] over a small [`ComboCtx`] — the same
//! engine that drives the production pipeline — so a combo is literally its
//! list of stages (see [`TransformCombo::graph`]), not a hand-written match
//! arm, and the per-stage spans/timings come for free.

use crate::container::DpzError;
use crate::decompose::{self, BlockShape};
use crate::stage::{Stage, StageGraph};
use dpz_linalg::{Dct1d, DctScratch, Matrix, Pca, PcaOptions};

/// The four pipelines of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformCombo {
    /// Single-stage: per-block DCT, keep the largest-magnitude coefficients.
    DctOnly,
    /// Single-stage: PCA on the raw block matrix, keep leading components.
    PcaOnly,
    /// Two-stage: full PCA first, then DCT on each component's score
    /// sequence with coefficient selection.
    DctOnPca,
    /// Two-stage (DPZ's choice): per-block DCT first, then PCA in the DCT
    /// domain with component selection.
    PcaOnDct,
}

impl TransformCombo {
    /// All four, in the paper's presentation order.
    pub const ALL: [TransformCombo; 4] = [
        TransformCombo::DctOnly,
        TransformCombo::PcaOnly,
        TransformCombo::DctOnPca,
        TransformCombo::PcaOnDct,
    ];

    /// Display label matching the figure captions.
    pub fn label(self) -> &'static str {
        match self {
            TransformCombo::DctOnly => "DCT",
            TransformCombo::PcaOnly => "PCA",
            TransformCombo::DctOnPca => "DCT on PCA",
            TransformCombo::PcaOnDct => "PCA on DCT",
        }
    }

    /// The combo's pipeline as a stage graph. Selection always sits in the
    /// final transform's stage; everything before it is a lossless rotation.
    pub fn graph(self) -> StageGraph<ComboCtx> {
        match self {
            TransformCombo::DctOnly => StageGraph::new()
                .then(DctForward)
                .then(KeepCoeffPrefix)
                .then(DctInverse),
            TransformCombo::PcaOnly => StageGraph::new()
                .then(PcaFit { full: false })
                .then(PcaSelect)
                .then(PcaInverse),
            TransformCombo::PcaOnDct => StageGraph::new()
                .then(DctForward)
                .then(PcaFit { full: false })
                .then(PcaSelect)
                .then(PcaInverse)
                .then(DctInverse),
            TransformCombo::DctOnPca => StageGraph::new()
                .then(PcaFit { full: true })
                .then(PcaRotate)
                .then(RowDctSelect)
                .then(PcaInverse),
        }
    }
}

/// Shared state for the combo stage graphs: the working `N × M` matrix
/// (blocks in, reconstruction out), the keep fraction, and the fitted PCA
/// model once the `combo.pca_fit` stage has run.
pub struct ComboCtx {
    mat: Option<Matrix>,
    keep_fraction: f64,
    pca: Option<Pca>,
}

impl ComboCtx {
    fn take(&mut self) -> Matrix {
        self.mat.take().expect("working matrix present")
    }
}

/// Zero all but the first `keep` (lowest-frequency) entries of each column.
///
/// Zonal selection: like keeping the `k` leading PCA components, a prefix
/// needs no per-coefficient position side information, so comparing the
/// pipelines at a fixed keep fraction is a fair fixed-ratio comparison
/// (magnitude-adaptive selection would smuggle in a free position bitmap).
fn keep_top_per_column(mat: &mut Matrix, keep: usize) {
    let (n, m) = mat.shape();
    let keep = keep.clamp(1, n);
    for c in 0..m {
        let mut col = mat.col(c);
        for v in col.iter_mut().skip(keep) {
            *v = 0.0;
        }
        mat.set_col(c, &col);
    }
}

/// Per-block DCT-II (lossless rotation).
struct DctForward;

impl Stage<ComboCtx> for DctForward {
    fn name(&self) -> &'static str {
        "combo.dct"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mat = ctx.take();
        ctx.mat = Some(decompose::dct_blocks(&mat));
        Ok(())
    }
}

/// Per-block inverse DCT.
struct DctInverse;

impl Stage<ComboCtx> for DctInverse {
    fn name(&self) -> &'static str {
        "combo.idct"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mat = ctx.take();
        ctx.mat = Some(decompose::idct_blocks(&mat));
        Ok(())
    }
}

/// Frequency-domain selection: keep the leading `⌈n·f⌉` coefficients of
/// every block.
struct KeepCoeffPrefix;

impl Stage<ComboCtx> for KeepCoeffPrefix {
    fn name(&self) -> &'static str {
        "combo.keep_prefix"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mut mat = ctx.take();
        let (n, _) = mat.shape();
        let keep = ((n as f64 * ctx.keep_fraction).round() as usize).max(1);
        keep_top_per_column(&mut mat, keep);
        ctx.mat = Some(mat);
        Ok(())
    }
}

/// Fit the PCA model on the current matrix (no transformation yet).
///
/// `full` marks graphs whose later stages rotate onto *all* `m` components
/// (`PcaRotate` is a lossless change of basis) — those need the complete
/// eigenbasis and always use the dense solver. Selection-only graphs keep
/// just the leading `⌈m·f⌉` components, so they route through the same
/// full/truncated/randomized crossover policy the compression pipeline's
/// stage 2 uses ([`crate::pipeline::fit_for_rank`]).
struct PcaFit {
    full: bool,
}

impl Stage<ComboCtx> for PcaFit {
    fn name(&self) -> &'static str {
        "combo.pca_fit"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mat = ctx.mat.as_ref().expect("working matrix present");
        let (_, m) = mat.shape();
        let pca = if self.full {
            Pca::fit(mat, PcaOptions::default())?
        } else {
            let want = ((m as f64 * ctx.keep_fraction).round() as usize).clamp(1, m);
            let (pca, _, _, _) =
                crate::pipeline::fit_for_rank(mat, PcaOptions::default(), want, m, None, None)?;
            pca
        };
        ctx.pca = Some(pca);
        Ok(())
    }
}

/// Component selection: project onto the leading `⌈m·f⌉` components.
struct PcaSelect;

impl Stage<ComboCtx> for PcaSelect {
    fn name(&self) -> &'static str {
        "combo.pca_select"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mat = ctx.take();
        let (_, m) = mat.shape();
        let k = ((m as f64 * ctx.keep_fraction).round() as usize).clamp(1, m);
        let pca = ctx.pca.as_ref().expect("PcaFit ran");
        ctx.mat = Some(pca.transform(&mat, k)?);
        Ok(())
    }
}

/// Full (lossless) rotation into the component basis — all `m` components.
struct PcaRotate;

impl Stage<ComboCtx> for PcaRotate {
    fn name(&self) -> &'static str {
        "combo.pca_rotate"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mat = ctx.take();
        let (_, m) = mat.shape();
        let pca = ctx.pca.as_ref().expect("PcaFit ran");
        ctx.mat = Some(pca.transform(&mat, m)?);
        Ok(())
    }
}

/// Rotate scores back out of the component basis.
struct PcaInverse;

impl Stage<ComboCtx> for PcaInverse {
    fn name(&self) -> &'static str {
        "combo.pca_inverse"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mat = ctx.take();
        let pca = ctx.pca.as_ref().expect("PcaFit ran");
        ctx.mat = Some(pca.inverse_transform(&mat)?);
        Ok(())
    }
}

/// DCT along each sample's *component vector* (the feature axis — the axis
/// the stage-1 transform handed over), keep a coefficient prefix, and
/// invert. The PCA rotation leaves no smoothness along that axis, so the
/// cosine basis — universal in the spatial domain — approximates poorly
/// here: exactly the paper's argument for why this ordering loses.
struct RowDctSelect;

impl Stage<ComboCtx> for RowDctSelect {
    fn name(&self) -> &'static str {
        "combo.row_dct_select"
    }
    fn execute(&self, ctx: &mut ComboCtx) -> Result<(), DpzError> {
        let mut scores = ctx.take();
        let (n, m) = scores.shape();
        let keep = ((m as f64 * ctx.keep_fraction).round() as usize).max(1);
        let plan = Dct1d::new(m);
        let mut scratch = DctScratch::new();
        for r in 0..n {
            let row = scores.row_mut(r);
            plan.forward_with(row, &mut scratch);
            for v in row.iter_mut().skip(keep) {
                *v = 0.0;
            }
            plan.inverse_with(row, &mut scratch);
        }
        ctx.mat = Some(scores);
        Ok(())
    }
}

/// Run one pipeline at the given keep fraction and reconstruct.
///
/// `keep_fraction` is the fraction of features retained in the selection
/// stage (0 < f <= 1); 0.2 reproduces the paper's 5× setting.
pub fn lossy_roundtrip(
    data: &[f32],
    combo: TransformCombo,
    keep_fraction: f64,
) -> Result<Vec<f32>, DpzError> {
    if data.len() < 4 {
        return Err(DpzError::BadInput("need at least four values"));
    }
    if !(0.0..=1.0).contains(&keep_fraction) || keep_fraction == 0.0 {
        return Err(DpzError::BadInput("keep fraction must be in (0, 1]"));
    }
    let shape: BlockShape = decompose::choose_shape(data.len());
    let blocks = decompose::to_blocks(data, shape); // n x m
    let mut ctx = ComboCtx {
        mat: Some(blocks),
        keep_fraction,
        pca: None,
    };
    combo.graph().run(&mut ctx)?;
    let recon = ctx.take();
    Ok(decompose::from_blocks(&recon, shape, data.len()))
}

/// Convenience: mean squared error of one combo at one keep fraction.
pub fn combo_mse(data: &[f32], combo: TransformCombo, keep_fraction: f64) -> Result<f64, DpzError> {
    let recon = lossy_roundtrip(data, combo, keep_fraction)?;
    let mse = data
        .iter()
        .zip(&recon)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / data.len() as f64;
    Ok(mse)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth 2-D-like field with correlated blocks, flattened.
    fn field() -> Vec<f32> {
        let (rows, cols) = (48, 96);
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (0.07 * r).sin() * 12.0 + (0.05 * c).cos() * 8.0
            })
            .collect()
    }

    #[test]
    fn full_keep_is_near_lossless_for_all() {
        let data = field();
        for combo in TransformCombo::ALL {
            let recon = lossy_roundtrip(&data, combo, 1.0).unwrap();
            let err = data
                .iter()
                .zip(&recon)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(err < 1e-3, "{}: max err {err}", combo.label());
        }
    }

    #[test]
    fn partial_keep_is_lossy_but_bounded() {
        let data = field();
        for combo in TransformCombo::ALL {
            let mse = combo_mse(&data, combo, 0.2).unwrap();
            assert!(mse.is_finite());
            assert!(mse > 0.0, "{} should be lossy at 20 %", combo.label());
            // Error stays far below the signal magnitude.
            assert!(mse < 100.0, "{}: mse {mse}", combo.label());
        }
    }

    #[test]
    fn pca_on_dct_beats_dct_on_pca() {
        // The paper's headline observation (Figure 4): with the same keep
        // fraction, PCA∘DCT introduces less error than DCT∘PCA.
        let data = field();
        let good = combo_mse(&data, TransformCombo::PcaOnDct, 0.2).unwrap();
        let bad = combo_mse(&data, TransformCombo::DctOnPca, 0.2).unwrap();
        assert!(
            good <= bad,
            "PCA on DCT ({good:.3e}) should beat DCT on PCA ({bad:.3e})"
        );
    }

    #[test]
    fn more_kept_features_means_less_error() {
        let data = field();
        for combo in TransformCombo::ALL {
            let coarse = combo_mse(&data, combo, 0.1).unwrap();
            let fine = combo_mse(&data, combo, 0.5).unwrap();
            assert!(
                fine <= coarse * 1.001,
                "{}: error should fall with more features ({coarse:.3e} -> {fine:.3e})",
                combo.label()
            );
        }
    }

    #[test]
    fn bad_arguments_rejected() {
        let data = field();
        assert!(lossy_roundtrip(&data, TransformCombo::DctOnly, 0.0).is_err());
        assert!(lossy_roundtrip(&data, TransformCombo::DctOnly, 1.5).is_err());
        assert!(lossy_roundtrip(&[1.0], TransformCombo::DctOnly, 0.5).is_err());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            TransformCombo::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn combo_graphs_match_their_definitions() {
        assert_eq!(
            TransformCombo::PcaOnDct.graph().stage_names(),
            vec![
                "combo.dct",
                "combo.pca_fit",
                "combo.pca_select",
                "combo.pca_inverse",
                "combo.idct"
            ]
        );
        assert_eq!(
            TransformCombo::DctOnPca.graph().stage_names(),
            vec![
                "combo.pca_fit",
                "combo.pca_rotate",
                "combo.row_dct_select",
                "combo.pca_inverse"
            ]
        );
        assert_eq!(TransformCombo::DctOnly.graph().len(), 3);
        assert_eq!(TransformCombo::PcaOnly.graph().len(), 3);
    }
}
