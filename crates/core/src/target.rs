//! Quality-target control plane: what the caller asks for — an error
//! bound, a compression ratio, or a PSNR — and how each request is resolved
//! to the single knob the pipeline actually has, the stage-3 quantizer
//! bound `P`.
//!
//! Two inversions sit on top of the plain bound-in/ratio-out pipeline:
//!
//! * **Fixed PSNR** (after "Fixed-PSNR Lossy Compression for Scientific
//!   Data"): stage 1 range-normalizes the input, so the quantizer noise of
//!   a uniform bound `P` is `P²/3` in the normalized domain and the
//!   range-relative PSNR follows in closed form — `PSNR = −20·log₁₀P +
//!   10·log₁₀3`. [`bound_for_psnr`] inverts that (with a fixed headroom for
//!   PCA-truncation error), and the caller validates post-hoc against the
//!   real reconstruction.
//! * **Fixed ratio** (after FRaZ): an iterative search over bound space
//!   against a cheap ratio oracle. The oracle ([`RatioOracle`]) is the §V
//!   sampling predictor's stage-1/2 machinery — same prefix sample, same
//!   transform and k-selection — extended with a bound-aware stage-3 term:
//!   instead of the constant `CR'_stage3 × CR'_zlib` band, it quantizes the
//!   sample scores at each candidate `P` and prices the index stream at its
//!   empirical symbol entropy. [`search_bound_for_ratio`] brackets the
//!   target in log-log space and refines by secant steps, spending at most
//!   [`MAX_ORACLE_PROBES`] oracle calls per search.

use crate::config::{DpzConfig, IndexWidth, KSelection, Scheme, Stage1Transform, Standardize};
use crate::container::DpzError;
use crate::decompose;
use crate::kpca::select_k;
use crate::quantize::quantize_scores;
use dpz_linalg::{Pca, PcaOptions};

/// Largest prefix (in values) any quality probe examines — shared by the
/// `AutoCodec` selector and the ratio-search oracle so every sampling-based
/// decision in the workspace reads the same amount of data.
pub const PROBE_CAP: usize = 64 * 1024;

/// Upper bound on oracle evaluations per ratio search (bracketing included).
pub const MAX_ORACLE_PROBES: u32 = 6;

/// Auto index-width policy: bounds tighter than this get 2-byte indices.
/// `P = 1e-3` (DPZ-l) stays narrow; `P = 1e-4` (DPZ-s) goes wide.
pub const WIDE_INDEX_AUTO_THRESHOLD: f64 = 1e-3;

/// Lower end of the bound-search bracket in quantizer-`P` space: past the
/// point where f32 outlier storage floors the error.
pub const P_SEARCH_MIN: f64 = 1e-7;
/// Upper end of the bound-search bracket: beyond it every score lands in
/// one or two bins.
pub const P_SEARCH_MAX: f64 = 0.25;

/// PSNR headroom reserved for PCA truncation and model rounding: the
/// quantizer is pointed this many dB above the request so the other error
/// sources can spend the rest of the budget.
const PSNR_HEADROOM_DB: f64 = 3.0;

/// Inputs below this size skip the entropy model entirely: compressing the
/// whole sample is cheaper than modelling it, so the oracle just measures.
const MICRO_ORACLE_MAX: usize = 4096;

/// DEFLATE typically shaves a few percent off the f32 model sections.
const MODEL_PACK_FACTOR: f64 = 0.95;

/// Fixed container framing (header, section table, CRCs).
const CONTAINER_OVERHEAD_BYTES: f64 = 96.0;

/// What the caller wants from a compression, in their own terms.
///
/// `ErrorBound` and `RelBound` are *static*: they resolve to a quantizer
/// bound without looking at the data. `Ratio` and `Psnr` are control
/// targets: [`crate::compress`] (and the chunked drivers) resolve them per
/// input — a closed form for PSNR, an oracle-guided search for ratio — and
/// confirm against the real artifact.
///
/// On the bound semantics: stage 1 normalizes the input to `[-0.5, 0.5]`
/// by its value range, so the quantizer bound `P` is *already* a
/// range-relative error bound (the paper's θ metric). `ErrorBound(p)` is
/// that bound verbatim — the paper's `P`, byte-compatible with the
/// pre-refactor `Scheme` plumbing. `RelBound(rel)` spells the same
/// contract out explicitly ("error ≤ `rel` × value range") and resolves to
/// the identical `P`; the two diverge only for backends without input
/// normalization (SZ/ZFP treat `ErrorBound` as value-domain absolute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityTarget {
    /// Absolute quantizer error bound — the paper's `P` for DPZ (bounding
    /// each retained score of the range-normalized data), a value-domain
    /// absolute bound for the SZ/ZFP baselines.
    ErrorBound(f64),
    /// Range-relative error bound: pointwise error at most `rel` times the
    /// input's value range.
    RelBound(f64),
    /// Fixed compression ratio: land `cr_total` within `target × (1 ± tol)`
    /// or fail with [`DpzError::TargetUnreachable`].
    Ratio {
        /// Requested end-to-end compression ratio (> 1).
        target: f64,
        /// Relative tolerance band, in `(0, 1)`.
        tol: f64,
    },
    /// Fixed quality: reconstruct at no worse than this range-relative
    /// PSNR (dB), validated against the real roundtrip.
    Psnr(f64),
}

impl QualityTarget {
    /// Reject non-sensical parameters with a typed error instead of
    /// asserting deeper in the pipeline (the quantizer keeps its invariant
    /// `assert!` as a backstop, but no validated config can reach it).
    pub fn validate(&self) -> Result<(), DpzError> {
        let bad = |msg: String| Err(DpzError::InvalidConfig(msg));
        match *self {
            QualityTarget::ErrorBound(p) | QualityTarget::RelBound(p) => {
                if !(p.is_finite() && p > 0.0) {
                    return bad(format!("error bound must be positive and finite, got {p}"));
                }
            }
            QualityTarget::Ratio { target, tol } => {
                if !(target.is_finite() && target > 1.0) {
                    return bad(format!(
                        "target ratio must be finite and exceed 1, got {target}"
                    ));
                }
                if !(tol.is_finite() && tol > 0.0 && tol < 1.0) {
                    return bad(format!("ratio tolerance must be in (0, 1), got {tol}"));
                }
            }
            QualityTarget::Psnr(db) => {
                if !(db.is_finite() && db > 0.0) {
                    return bad(format!("target PSNR must be positive and finite, got {db}"));
                }
            }
        }
        Ok(())
    }

    /// The quantizer bound this target resolves to without seeing any
    /// data, or `None` for the search/closed-form targets (`Ratio`,
    /// `Psnr`), which must be resolved per input first.
    pub fn static_bound(&self) -> Option<f64> {
        match *self {
            QualityTarget::ErrorBound(p) | QualityTarget::RelBound(p) => Some(p),
            QualityTarget::Ratio { .. } | QualityTarget::Psnr(..) => None,
        }
    }

    /// Whether resolving this target requires a per-input control loop.
    pub fn needs_resolution(&self) -> bool {
        self.static_bound().is_none()
    }
}

/// The quantizer bound that delivers a range-relative PSNR of `db` (dB),
/// with [`PSNR_HEADROOM_DB`] reserved for the non-quantizer error sources.
/// Uniform quantization at bound `P` has MSE `P²/3` in the normalized
/// domain, so `P = √3 · 10^(−dB/20)`.
pub fn bound_for_psnr(db: f64) -> f64 {
    (3.0f64).sqrt() * 10f64.powf(-(db + PSNR_HEADROOM_DB) / 20.0)
}

/// The range-relative PSNR (dB) the quantizer alone would deliver at bound
/// `p` — the closed-form inverse of [`bound_for_psnr`] minus the headroom.
pub fn psnr_for_bound(p: f64) -> f64 {
    -20.0 * p.log10() + 10.0 * (3.0f64).log10()
}

/// Tighten a TVE-based k-selection so PCA truncation cannot eat the PSNR
/// budget on its own: the retained-energy shortfall `(1 − TVE) · Var` must
/// stay under the target MSE (normalized variance is at most `1/12` for
/// range-normalized data, so `12 ×` is the conservative inversion).
/// Explicit `Fixed` / knee-point selections are the caller's business and
/// are left alone.
pub(crate) fn tighten_selection_for_psnr(selection: KSelection, db: f64) -> KSelection {
    let budget = 10f64.powf(-(db + PSNR_HEADROOM_DB) / 10.0);
    let needed = (1.0 - 12.0 * budget).clamp(0.99, 0.99999999);
    match selection {
        KSelection::Tve(t) if t < needed => KSelection::Tve(needed),
        other => other,
    }
}

/// One notch tighter on the TVE dial (used by the post-hoc PSNR retry).
pub(crate) fn tighten_selection_once(selection: KSelection) -> KSelection {
    match selection {
        KSelection::Tve(t) => KSelection::Tve((1.0 - (1.0 - t) / 10.0).min(0.99999999)),
        other => other,
    }
}

/// Is a measured ratio inside the requested tolerance band?
pub fn ratio_within(measured: f64, target: f64, tol: f64) -> bool {
    measured >= target * (1.0 - tol) && measured <= target * (1.0 + tol)
}

/// How a data-dependent target was resolved: the bound the control loop
/// landed on and the search telemetry behind it.
#[derive(Debug, Clone, Copy)]
pub struct TargetResolution {
    /// Resolved quantizer bound `P`.
    pub p: f64,
    /// Index width the bound resolves to under the config's policy.
    pub wide_index: bool,
    /// Oracle-predicted compression ratio at `p` (ratio searches only).
    pub predicted_cr: Option<f64>,
    /// Closed-form quantizer PSNR at `p` (dB).
    pub predicted_psnr: f64,
    /// Oracle evaluations the search spent.
    pub oracle_calls: u32,
    /// Whether the search converged inside the tolerance band (always true
    /// for closed-form resolutions).
    pub converged: bool,
}

/// Cheap compression-ratio oracle for the bound search.
///
/// Built once per input from a ≤[`PROBE_CAP`]-value prefix: stage 1
/// (normalize + transform) and stage 2 (PCA at the configured k-selection)
/// run once, and each [`RatioOracle::predict_cr`] call then only
/// re-quantizes the cached sample scores — microseconds against the
/// milliseconds-to-seconds of a real compression, which is what makes a
/// 6-probe FRaZ-style search practical.
pub struct RatioOracle {
    kind: OracleKind,
}

enum OracleKind {
    /// Entropy model over the sampled score distribution.
    Entropy {
        /// PCA scores of the prefix sample.
        scores: Vec<f64>,
        /// Predicted score count for the full input (`N_full × k`).
        scores_full: f64,
        /// Predicted packed model bytes for the full input.
        model_bytes: f64,
        /// Uncompressed size of the full input.
        orig_bytes: f64,
    },
    /// Tiny inputs: just compress the sample and measure.
    Micro { sample: Vec<f32>, cfg: DpzConfig },
}

impl RatioOracle {
    /// Run stages 1–2 on the input's prefix and cache what
    /// [`RatioOracle::predict_cr`] needs. The config's transform,
    /// k-selection, and standardization policy all apply, so the oracle
    /// prices the pipeline the search will actually run.
    pub fn build(data: &[f32], cfg: &DpzConfig) -> Result<RatioOracle, DpzError> {
        if data.len() < 2 {
            return Err(DpzError::BadInput("need at least two values"));
        }
        let sample = &data[..data.len().min(PROBE_CAP)];
        if sample.len() < MICRO_ORACLE_MAX {
            return Ok(RatioOracle {
                kind: OracleKind::Micro {
                    sample: sample.to_vec(),
                    cfg: *cfg,
                },
            });
        }

        let shape = decompose::choose_shape(sample.len());
        let (lo, hi) = sample
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(f64::from(v)), hi.max(f64::from(v)))
            });
        let range = if hi - lo > 0.0 { hi - lo } else { 1.0 };
        let mut blocks = decompose::to_blocks(sample, shape);
        for v in blocks.as_mut_slice() {
            *v = (*v - lo) / range - 0.5;
        }
        let coeffs = match cfg.transform {
            Stage1Transform::Dct => decompose::dct_blocks(&blocks),
            Stage1Transform::Dwt { levels } => {
                decompose::dwt_blocks(&blocks, decompose::effective_dwt_levels(shape.n, levels))
            }
        };
        let standardize = matches!(cfg.standardize, Standardize::On);
        let opts = PcaOptions { standardize };
        let (pca, k) = match cfg.selection {
            KSelection::Tve(t) => {
                let pca = Pca::fit_tve_exact(&coeffs, opts, t)?;
                let k = select_k(&pca, cfg.selection).k;
                (pca, k)
            }
            KSelection::Fixed(k) => {
                let k = k.clamp(1, shape.m);
                (Pca::fit_truncated(&coeffs, opts, k)?, k)
            }
            KSelection::KneePoint(_) => {
                let pca = Pca::fit(&coeffs, opts)?;
                let k = select_k(&pca, cfg.selection).k;
                (pca, k)
            }
        };
        let k = k.max(1);
        let scores = pca.transform(&coeffs, k)?;

        let full = decompose::choose_shape(data.len());
        let model_f32 = full.m * k + full.m + if standardize { full.m } else { 0 };
        Ok(RatioOracle {
            kind: OracleKind::Entropy {
                scores: scores.as_slice().to_vec(),
                scores_full: (full.n * k) as f64,
                model_bytes: (model_f32 * 4) as f64 * MODEL_PACK_FACTOR,
                orig_bytes: (data.len() * 4) as f64,
            },
        })
    }

    /// Predicted end-to-end compression ratio at quantizer bound `p` with
    /// the given index width: quantize the cached sample scores, price the
    /// index stream at its empirical symbol entropy, the outliers at 4
    /// bytes apiece, and add the (bound-independent) model cost.
    pub fn predict_cr(&self, p: f64, wide: bool) -> f64 {
        match &self.kind {
            OracleKind::Micro { sample, cfg } => {
                let mut c = *cfg;
                c.target = QualityTarget::ErrorBound(p);
                c.index_width = if wide {
                    IndexWidth::Wide
                } else {
                    IndexWidth::Narrow
                };
                crate::pipeline::compress(sample, &[sample.len()], &c)
                    .map(|out| out.stats.cr_total)
                    .unwrap_or(0.0)
            }
            OracleKind::Entropy {
                scores,
                scores_full,
                model_bytes,
                orig_bytes,
            } => {
                let q = quantize_scores(
                    scores,
                    Scheme::Custom {
                        p,
                        wide_index: wide,
                    },
                );
                let bits = symbol_entropy_bits(&q.indices, q.wide_index);
                // Floor the per-symbol cost: DEFLATE never reaches zero
                // bits/symbol on real streams (block framing, code tables).
                let idx_bytes = scores_full * (bits.max(0.02) / 8.0);
                let outlier_frac = q.outliers.len() as f64 / q.len.max(1) as f64;
                let bytes = idx_bytes
                    + scores_full * outlier_frac * 4.0
                    + model_bytes
                    + CONTAINER_OVERHEAD_BYTES;
                orig_bytes / bytes
            }
        }
    }
}

/// Zeroth-order entropy (bits/symbol) of a quantizer index stream.
fn symbol_entropy_bits(indices: &[u8], wide: bool) -> f64 {
    let mut hist = vec![0u32; if wide { 1 << 16 } else { 1 << 8 }];
    let n = if wide {
        for pair in indices.chunks_exact(2) {
            hist[u16::from_le_bytes([pair[0], pair[1]]) as usize] += 1;
        }
        indices.len() / 2
    } else {
        for &b in indices {
            hist[b as usize] += 1;
        }
        indices.len()
    };
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    let mut bits = 0.0;
    for &c in &hist {
        if c > 0 {
            let f = f64::from(c) / n;
            bits -= f * f.log2();
        }
    }
    // A 2-byte symbol costs at least its byte width to frame even when the
    // distribution is degenerate; entropy itself is the dominant term.
    bits
}

/// Outcome of a bound search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOutcome {
    /// The bound the search landed on.
    pub p: f64,
    /// Oracle-predicted ratio at that bound.
    pub predicted_cr: f64,
    /// Oracle evaluations spent.
    pub oracle_calls: u32,
    /// Whether the prediction landed inside the tolerance band.
    pub converged: bool,
}

/// FRaZ-style fixed-ratio search: bracket `[lo, hi]` in bound space, then
/// secant steps on the log-log curve `ln CR(ln p)`, spending at most
/// [`MAX_ORACLE_PROBES`] calls to `predict` (which maps a bound to a
/// predicted compression ratio — an [`RatioOracle`], or a real
/// micro-compression for the baseline codecs).
///
/// Every search records its probe count in the `dpz_target_search_iters`
/// histogram and `dpz_target_oracle_calls_total` counter. An unreachable
/// target — outside the predicted range at both bracket ends — fails fast
/// with [`DpzError::TargetUnreachable`] after the two bracketing probes.
pub fn search_bound_for_ratio(
    predict: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    target: f64,
    tol: f64,
) -> Result<SearchOutcome, DpzError> {
    let record = |calls: u32| {
        let reg = dpz_telemetry::global();
        reg.histogram(
            "dpz_target_search_iters",
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0],
        )
        .observe(f64::from(calls));
        reg.counter("dpz_target_oracle_calls_total")
            .add(u64::from(calls));
    };
    let mut calls: u32 = 0;

    let (mut p_lo, mut p_hi) = (lo, hi);
    calls += 1;
    let mut cr_lo = predict(p_lo);
    if ratio_within(cr_lo, target, tol) {
        record(calls);
        return Ok(SearchOutcome {
            p: p_lo,
            predicted_cr: cr_lo,
            oracle_calls: calls,
            converged: true,
        });
    }
    calls += 1;
    let mut cr_hi = predict(p_hi);
    if ratio_within(cr_hi, target, tol) {
        record(calls);
        return Ok(SearchOutcome {
            p: p_hi,
            predicted_cr: cr_hi,
            oracle_calls: calls,
            converged: true,
        });
    }
    // CR is (approximately) monotone in the bound, so a target outside the
    // bracket's predicted range cannot be reached by any bound.
    if cr_hi < target * (1.0 - tol) && cr_lo < target * (1.0 - tol) {
        record(calls);
        return Err(DpzError::TargetUnreachable {
            requested: target,
            achievable: cr_hi.max(cr_lo),
        });
    }
    if cr_lo > target * (1.0 + tol) && cr_hi > target * (1.0 + tol) {
        record(calls);
        return Err(DpzError::TargetUnreachable {
            requested: target,
            achievable: cr_lo.min(cr_hi),
        });
    }

    let log_dist = |cr: f64| (cr.max(1e-12) / target).ln().abs();
    let mut best = if log_dist(cr_lo) <= log_dist(cr_hi) {
        (p_lo, cr_lo)
    } else {
        (p_hi, cr_hi)
    };
    while calls < MAX_ORACLE_PROBES {
        let (llo, lhi) = (p_lo.ln(), p_hi.ln());
        let (clo, chi) = (cr_lo.max(1e-12).ln(), cr_hi.max(1e-12).ln());
        // Secant interpolation in log-log space, clamped away from the
        // bracket ends so a flat stretch cannot stall the iteration.
        let t = if (chi - clo).abs() < 1e-12 {
            0.5
        } else {
            ((target.ln() - clo) / (chi - clo)).clamp(0.08, 0.92)
        };
        let p_next = (llo + t * (lhi - llo)).exp();
        calls += 1;
        let cr = predict(p_next);
        if log_dist(cr) < log_dist(best.1) {
            best = (p_next, cr);
        }
        if ratio_within(cr, target, tol) {
            record(calls);
            return Ok(SearchOutcome {
                p: p_next,
                predicted_cr: cr,
                oracle_calls: calls,
                converged: true,
            });
        }
        if cr < target {
            p_lo = p_next;
            cr_lo = cr;
        } else {
            p_hi = p_next;
            cr_hi = cr;
        }
    }
    record(calls);
    // Budget spent without entering the band: hand back the closest bound
    // (the caller's confirmation pass decides whether it is close enough).
    Ok(SearchOutcome {
        p: best.0,
        predicted_cr: best.1,
        oracle_calls: calls,
        converged: false,
    })
}

/// Resolve a `Ratio` target for `data`: build the oracle, search, and
/// return the resolved config plus the search telemetry. `calibration`
/// scales the oracle's predictions (1.0 on the first pass; the measured /
/// predicted ratio on a corrective pass).
pub(crate) fn resolve_ratio(
    cfg: &DpzConfig,
    oracle: &RatioOracle,
    target: f64,
    tol: f64,
    calibration: f64,
) -> Result<(DpzConfig, TargetResolution), DpzError> {
    let outcome = search_bound_for_ratio(
        |p| oracle.predict_cr(p, cfg.wide_for(p)) * calibration,
        P_SEARCH_MIN,
        P_SEARCH_MAX,
        target,
        tol,
    )?;
    let resolved = cfg.with_resolved_bound(outcome.p);
    Ok((
        resolved,
        TargetResolution {
            p: outcome.p,
            wide_index: cfg.wide_for(outcome.p),
            predicted_cr: Some(outcome.predicted_cr),
            predicted_psnr: psnr_for_bound(outcome.p),
            oracle_calls: outcome.oracle_calls,
            converged: outcome.converged,
        },
    ))
}

/// Resolve a `Psnr` target: closed-form bound plus a tightened TVE floor so
/// truncation error stays inside the budget. No data inspection is needed —
/// stage-1 normalization folds the value range into the bound — but the
/// caller still validates post-hoc against the real roundtrip.
pub(crate) fn resolve_psnr(cfg: &DpzConfig, db: f64) -> (DpzConfig, TargetResolution) {
    let p = bound_for_psnr(db);
    let mut resolved = cfg.with_resolved_bound(p);
    resolved.selection = tighten_selection_for_psnr(cfg.selection, db);
    (
        resolved,
        TargetResolution {
            p,
            wide_index: cfg.wide_for(p),
            predicted_cr: None,
            predicted_psnr: psnr_for_bound(p),
            oracle_calls: 0,
            converged: true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_nonsense() {
        for bad in [
            QualityTarget::ErrorBound(0.0),
            QualityTarget::ErrorBound(-1e-3),
            QualityTarget::ErrorBound(f64::NAN),
            QualityTarget::RelBound(f64::INFINITY),
            QualityTarget::Ratio {
                target: 0.5,
                tol: 0.1,
            },
            QualityTarget::Ratio {
                target: 10.0,
                tol: 1.0,
            },
            QualityTarget::Ratio {
                target: 10.0,
                tol: 0.0,
            },
            QualityTarget::Psnr(0.0),
            QualityTarget::Psnr(-40.0),
        ] {
            assert!(
                matches!(bad.validate(), Err(DpzError::InvalidConfig(_))),
                "{bad:?} should be rejected"
            );
        }
        for good in [
            QualityTarget::ErrorBound(1e-3),
            QualityTarget::RelBound(1e-4),
            QualityTarget::Ratio {
                target: 20.0,
                tol: 0.15,
            },
            QualityTarget::Psnr(60.0),
        ] {
            good.validate().unwrap();
        }
    }

    #[test]
    fn psnr_bound_round_trips() {
        for db in [30.0, 50.0, 70.0, 90.0] {
            let p = bound_for_psnr(db);
            // The closed form returns the request plus the headroom.
            let back = psnr_for_bound(p);
            assert!(
                (back - db - PSNR_HEADROOM_DB).abs() < 1e-9,
                "db={db}: p={p:e} back={back}"
            );
        }
        // Tighter targets need tighter bounds.
        assert!(bound_for_psnr(80.0) < bound_for_psnr(40.0));
    }

    #[test]
    fn tve_floor_scales_with_target() {
        let loose = KSelection::Tve(0.99999);
        let KSelection::Tve(t40) = tighten_selection_for_psnr(loose, 40.0) else {
            panic!("tve stays tve")
        };
        let KSelection::Tve(t80) = tighten_selection_for_psnr(loose, 80.0) else {
            panic!("tve stays tve")
        };
        assert!(t80 >= t40, "higher PSNR needs at least as much variance");
        // Fixed selection is the caller's explicit choice.
        assert_eq!(
            tighten_selection_for_psnr(KSelection::Fixed(7), 80.0),
            KSelection::Fixed(7)
        );
    }

    #[test]
    fn oracle_prediction_is_monotone_in_bound() {
        let data: Vec<f32> = (0..32 * 1024)
            .map(|i| {
                let x = i as f32 * 0.01;
                x.sin() * 40.0 + (0.3 * x).cos() * 25.0
            })
            .collect();
        let cfg = DpzConfig::loose();
        let oracle = RatioOracle::build(&data, &cfg).unwrap();
        let tight = oracle.predict_cr(1e-5, true);
        let mid = oracle.predict_cr(1e-3, false);
        let loose = oracle.predict_cr(1e-2, false);
        assert!(tight > 0.0 && mid > 0.0 && loose > 0.0);
        assert!(
            tight <= mid * 1.05 && mid <= loose * 1.05,
            "CR should not fall as the bound loosens: {tight:.2} {mid:.2} {loose:.2}"
        );
    }

    #[test]
    fn search_converges_on_synthetic_curve() {
        // A synthetic power-law oracle: CR(p) = 100 · (p / 0.01)^0.4.
        let predict = |p: f64| 100.0 * (p / 0.01).powf(0.4);
        let s = search_bound_for_ratio(predict, 1e-7, 0.25, 30.0, 0.05).unwrap();
        assert!(s.converged, "search should converge on a smooth curve");
        assert!(s.oracle_calls <= MAX_ORACLE_PROBES);
        assert!(ratio_within(predict(s.p), 30.0, 0.05));
    }

    #[test]
    fn search_reports_unreachable() {
        // Flat oracle far below the target.
        let err = search_bound_for_ratio(|_| 2.0, 1e-7, 0.25, 1000.0, 0.1).unwrap_err();
        match err {
            DpzError::TargetUnreachable {
                requested,
                achievable,
            } => {
                assert_eq!(requested, 1000.0);
                assert!((achievable - 2.0).abs() < 1e-12);
            }
            other => panic!("expected TargetUnreachable, got {other:?}"),
        }
    }
}
