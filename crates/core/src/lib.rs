//! # dpz-core
//!
//! DPZ: a multi-stage, information-retrieval-oriented lossy compressor for
//! floating-point scientific data — the primary contribution of Zhang et
//! al., *"DPZ: Improving Lossy Compression Ratio with Information Retrieval
//! on Scientific Data"* (IEEE CLUSTER 2021), reproduced in Rust.
//!
//! ## Pipeline (Figure 5 of the paper)
//!
//! 1. **Data decomposition & transformation** ([`decompose`], stage 1):
//!    arbitrary-dimensional data is flattened and rearranged into `M` 1-D
//!    blocks of `N` datapoints (`M < N`, `N/M` the smallest integer ratio
//!    > 1), preserving the original data order so locality survives; a
//!    > 1-D DCT-II is applied to every block (rayon-parallel).
//! 2. **k-PCA selection** ([`kpca`], stage 2): PCA runs *directly in the DCT
//!    domain* (valid because both transforms are orthogonal — Section III-B2
//!    of the paper), and `k` leading components are retained by either
//!    **knee-point detection** on the cumulative explained-variance curve or
//!    an **explained-variance threshold** ("three-nine" … "eight-nine").
//! 3. **Quantization & encoding** ([`quantize`], stage 3): the retained PCA
//!    scores — symmetric around zero thanks to the DCT-domain normality —
//!    go through a uniform symmetric quantizer (bin width `2P`, range
//!    `±P·B`); in-range points become 1-byte (DPZ-l) or 2-byte (DPZ-s) bin
//!    indices, out-of-range points are kept verbatim.
//! 4. **Lossless add-on** ([`container`]): every section (indices, outliers,
//!    basis, means) is DEFLATE-compressed (`dpz-deflate`).
//!
//! A **sampling strategy** ([`sampling`], Algorithm 2) estimates the
//! variance-inflation-factor compressibility indicator, picks `k` from a few
//! block subsets, and predicts the end-to-end compression ratio before
//! compressing; the pipeline can then use a truncated eigensolver for a
//! measurable speedup.
//!
//! ## Quick start
//!
//! ```
//! use dpz_core::{compress, decompress, DpzConfig};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let cfg = DpzConfig::loose(); // DPZ-l: P = 1e-3, 1-byte indices
//! let compressed = compress(&data, &[64, 64], &cfg).unwrap();
//! let (restored, dims) = decompress(&compressed.bytes).unwrap();
//! assert_eq!(dims, vec![64, 64]);
//! assert_eq!(restored.len(), data.len());
//! ```

#![warn(missing_docs)]

pub mod chunked;
pub mod combos;
pub mod config;
pub mod container;
pub mod decompose;
pub mod kpca;
pub mod pipeline;
pub mod quantize;
pub mod sampling;
pub mod stage;
pub mod target;

pub use chunked::{
    compress_chunked, compress_progressive, decompress_chunk, decompress_chunk_from,
    decompress_chunked, decompress_chunked_with_info, decompress_progressive, decompress_region,
    decompress_region_from, reencode_legacy, ChunkEntry, ChunkedCompressed, ComponentEntry,
    ProgressiveDecoded, ProgressiveEntry, SeekableIndex, FLAG_PROGRESSIVE,
};
pub use config::{
    DpzConfig, IndexWidth, KSelection, Scheme, Stage1Transform, Standardize, TveLevel,
};
pub use container::{ComponentSpan, ContainerInfo, DpzError, LosslessBackend, ProgressiveLayout};
pub use decompose::extract_region;
pub use pipeline::PSNR_SLACK_DB;
pub use pipeline::{
    compress, compress_with_breakdown, decompress, decompress_with_info, Compressed,
    CompressionBreakdown, CompressionStats, NumericOutcome, PipelinePlan, StageTimings,
};
pub use sampling::{SamplingEstimate, SamplingStrategy};
pub use stage::{BufferPool, Stage, StageGraph, StageTrace};
pub use target::{
    bound_for_psnr, psnr_for_bound, ratio_within, search_bound_for_ratio, QualityTarget,
    RatioOracle, SearchOutcome, TargetResolution, MAX_ORACLE_PROBES, PROBE_CAP, P_SEARCH_MAX,
    P_SEARCH_MIN, WIDE_INDEX_AUTO_THRESHOLD,
};
