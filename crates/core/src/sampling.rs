//! The sampling strategy (Algorithm 2 of the paper): estimate
//! compressibility (VIF), pick `k` from a few block subsets, and predict
//! the final compression ratio before compressing.
//!
//! * **VIF probe** (steps 1-2): a deterministic row sample at rate `SR`
//!   feeds variance-inflation-factor regressions; `VIF < 5` (the common
//!   collinearity cutoff) marks *low-linearity* data, which both triggers
//!   standardization and predicts poor stage-2 compression.
//! * **k estimation** (steps 3-5): the `M` blocks are divided into `S`
//!   consecutive subsets; PCA runs on `T` of them (first/middle/last by
//!   default — the paper's locality-guided pick) and the per-subset `k`s
//!   for the requested TVE are averaged into `k_e`.
//! * **CR prediction** (step 6): `CR_p = CR_stage1&2 × CR'_stage3 ×
//!   CR'_zlib` with the paper's empirical stage constants
//!   (`CR'_stage3 ∈ [1.9, 2.5]`, `CR'_zlib ≈ 1.25`).

use crate::container::DpzError;
use dpz_linalg::stats::vif;
use dpz_linalg::{Matrix, Pca, PcaOptions};

/// VIF cutoff below which features count as low-collinearity (standardize).
pub const VIF_CUTOFF: f64 = 5.0;
/// Paper's empirical stage-3 reduction range.
pub const STAGE3_RANGE: (f64, f64) = (1.9, 2.5);
/// Paper's empirical zlib reduction factor.
pub const ZLIB_FACTOR: f64 = 1.25;
/// Regressor budget per VIF regression (full all-vs-rest is `O(M⁴)`).
const VIF_REGRESSORS: usize = 12;
/// Number of target features probed for VIF.
const VIF_TARGETS: usize = 8;

/// Sampling configuration (Algorithm 2 inputs).
#[derive(Debug, Clone, Copy)]
pub struct SamplingStrategy {
    /// Number of subsets `S` (10 by default).
    pub subsets: usize,
    /// Number of subsets examined, `T` (3 by default).
    pub picks: usize,
    /// Row sampling rate `SR` for the VIF probe.
    pub vif_sample_rate: f64,
    /// TVE threshold used for per-subset k selection.
    pub tve: f64,
}

impl Default for SamplingStrategy {
    fn default() -> Self {
        SamplingStrategy {
            subsets: 10,
            picks: 3,
            vif_sample_rate: 0.01,
            tve: 0.99999,
        }
    }
}

/// Algorithm 2 outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingEstimate {
    /// Mean VIF over the probed features.
    pub vif: f64,
    /// `vif < 5`: standardize before PCA (and expect poor compression).
    pub low_linearity: bool,
    /// Estimated component count `k_e`.
    pub k_estimate: usize,
    /// Per-subset `k` values that were averaged.
    pub subset_ks: Vec<usize>,
    /// True when any probed subset's k hit the subset width — the estimate
    /// is then a lower bound, not an estimate (the real k may be much
    /// larger), and callers should fall back to full selection.
    pub saturated: bool,
    /// Estimated stage-1&2 ratio (accounting scores + basis + means).
    pub cr_stage12: f64,
    /// Predicted final CR range `[low, high]` (`CR_p`).
    pub cr_predicted: (f64, f64),
}

impl SamplingStrategy {
    /// Run the strategy over the DCT-domain block matrix (`N x M`).
    pub fn estimate(&self, coeffs: &Matrix) -> Result<SamplingEstimate, DpzError> {
        let _span = dpz_telemetry::span!("sampling.estimate");
        let (n, m) = coeffs.shape();
        if n < 2 || m < 2 {
            return Err(DpzError::BadInput(
                "sampling needs at least a 2x2 block matrix",
            ));
        }
        let vif_mean = {
            let _span = dpz_telemetry::span!("vif_probe");
            self.probe_vif(coeffs)?
        };
        let (subset_ks, subset_widths) = {
            let _span = dpz_telemetry::span!("subset_ks");
            self.subset_ks(coeffs)?
        };
        let saturated = subset_ks.iter().zip(&subset_widths).any(|(&k, &w)| k >= w);
        let k_estimate = ((subset_ks.iter().sum::<usize>() as f64 / subset_ks.len().max(1) as f64)
            .round() as usize)
            .clamp(1, m);

        // Stage-1&2 ratio with the real accounting: the compressed core is
        // N·k scores + M·k basis + M means, all f32.
        let orig = (n * m) as f64;
        let core = (n * k_estimate + m * k_estimate + m) as f64;
        let cr_stage12 = orig / core;
        let cr_predicted = (
            cr_stage12 * STAGE3_RANGE.0 * ZLIB_FACTOR,
            cr_stage12 * STAGE3_RANGE.1 * ZLIB_FACTOR,
        );
        let reg = dpz_telemetry::global();
        reg.gauge("dpz_sampling_vif").set(vif_mean);
        reg.gauge("dpz_sampling_k_estimate").set(k_estimate as f64);
        Ok(SamplingEstimate {
            vif: vif_mean,
            low_linearity: vif_mean < VIF_CUTOFF,
            k_estimate,
            subset_ks,
            saturated,
            cr_stage12,
            cr_predicted,
        })
    }

    /// Steps 1-2: VIF of a sampled row subset, averaged over a handful of
    /// target features regressed on a bounded regressor set.
    fn probe_vif(&self, coeffs: &Matrix) -> Result<f64, DpzError> {
        let profile = vif_profile(coeffs, self.vif_sample_rate, VIF_TARGETS)?;
        Ok(profile.iter().sum::<f64>() / profile.len() as f64)
    }

    /// Steps 3-5: per-subset k for the requested TVE; also returns each
    /// probed subset's feature count so saturation can be detected.
    fn subset_ks(&self, coeffs: &Matrix) -> Result<(Vec<usize>, Vec<usize>), DpzError> {
        let (_, m) = coeffs.shape();
        // A subset can never report more components than it has features, so
        // keep subsets large enough that the cap does not bias k_e downward
        // on small inputs (the paper's M = 1800 never hits this).
        const MIN_SUBSET_FEATURES: usize = 32;
        let s = self
            .subsets
            .clamp(1, m)
            .min((m / MIN_SUBSET_FEATURES).max(1));
        let t = self.picks.clamp(1, s);
        // Paper: first, middle and last subsets track locality best; for
        // other T values spread the picks evenly.
        let picks: Vec<usize> = if t == 1 {
            vec![0]
        } else {
            (0..t).map(|i| i * (s - 1) / (t - 1)).collect()
        };
        let per = m.div_ceil(s);
        let mut ks = Vec::with_capacity(t);
        let mut widths = Vec::with_capacity(t);
        for &pick in &picks {
            let lo = pick * per;
            if lo >= m {
                continue; // ceil-division can push trailing subsets past M
            }
            let hi = ((pick + 1) * per).min(m);
            let cols: Vec<usize> = (lo..hi).collect();
            let sub = coeffs.select_cols(&cols);
            let pca = Pca::fit(&sub, PcaOptions::default())?;
            ks.push(pca.k_for_tve(self.tve));
            widths.push(cols.len());
        }
        if ks.is_empty() {
            return Err(DpzError::BadInput("no usable subsets"));
        }
        Ok((ks, widths))
    }
}

/// Per-feature VIF profile over a deterministic row sample (the data behind
/// Figure 10's boxplots).
///
/// `targets` evenly spaced feature columns are each regressed on their
/// `VIF_REGRESSORS` nearest neighbor blocks (locality makes neighbors the
/// natural collinearity candidates; a full all-versus-rest regression per
/// feature would cost `O(M⁴)`). Returns one VIF per probed target.
pub fn vif_profile(
    coeffs: &Matrix,
    sample_rate: f64,
    targets: usize,
) -> Result<Vec<f64>, DpzError> {
    let (n, m) = coeffs.shape();
    if n < 2 || m < 2 {
        return Err(DpzError::BadInput("VIF probe needs at least a 2x2 matrix"));
    }
    // Deterministic stride sample of rows; keep enough rows for stable
    // regressions.
    let want = ((n as f64 * sample_rate).ceil() as usize).clamp(32.min(n), n);
    let stride = (n / want).max(1);
    let rows: Vec<usize> = (0..n).step_by(stride).take(want).collect();

    let t_count = targets.clamp(1, m);
    let target_cols: Vec<usize> = (0..t_count).map(|t| t * m / t_count).collect();
    let mut out = Vec::with_capacity(t_count);
    for &t in &target_cols {
        let half = VIF_REGRESSORS / 2;
        let lo = t.saturating_sub(half);
        let hi = (t + half + 1).min(m);
        let cols: Vec<usize> = (lo..hi).collect();
        if cols.len() < 2 {
            continue;
        }
        let mut sub = Matrix::zeros(rows.len(), cols.len());
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                sub.set(ri, ci, coeffs.get(r, c));
            }
        }
        let target_pos = cols.iter().position(|&c| c == t).unwrap();
        out.push(vif(&sub, target_pos)?);
    }
    if out.is_empty() {
        return Err(DpzError::BadInput("too few features for a VIF probe"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block matrix whose columns are shifted copies of one smooth signal —
    /// extremely collinear, like a smooth field's DCT blocks.
    fn collinear_blocks(n: usize, m: usize) -> Matrix {
        let mut out = Matrix::zeros(n, m);
        for j in 0..m {
            for i in 0..n {
                let x = (i + j) as f64 * 0.05;
                out.set(i, j, x.sin() * 10.0 + 0.3 * (x * 0.5).cos());
            }
        }
        out
    }

    /// Decorrelated pseudo-random matrix — the HACC-vx case.
    fn white_blocks(n: usize, m: usize) -> Matrix {
        let mut s = 7u64;
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                out.set(i, j, (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
            }
        }
        out
    }

    #[test]
    fn collinear_data_has_high_vif_and_small_k() {
        let est = SamplingStrategy::default()
            .estimate(&collinear_blocks(400, 60))
            .unwrap();
        assert!(est.vif >= VIF_CUTOFF, "collinear VIF {}", est.vif);
        assert!(!est.low_linearity);
        assert!(est.k_estimate <= 6, "k_e {}", est.k_estimate);
        assert!(est.cr_stage12 > 5.0);
    }

    #[test]
    fn white_data_has_low_vif_and_large_k() {
        let est = SamplingStrategy::default()
            .estimate(&white_blocks(400, 60))
            .unwrap();
        assert!(est.vif < VIF_CUTOFF, "white VIF {}", est.vif);
        assert!(est.low_linearity);
        assert!(est.k_estimate > 3, "k_e {}", est.k_estimate);
    }

    #[test]
    fn vif_separates_the_two_regimes() {
        let hi = SamplingStrategy::default()
            .estimate(&collinear_blocks(300, 40))
            .unwrap()
            .vif;
        let lo = SamplingStrategy::default()
            .estimate(&white_blocks(300, 40))
            .unwrap()
            .vif;
        assert!(hi > 2.0 * lo, "VIF separation failed: {hi} vs {lo}");
    }

    #[test]
    fn predicted_range_brackets_stage12() {
        let est = SamplingStrategy::default()
            .estimate(&collinear_blocks(200, 50))
            .unwrap();
        let (lo, hi) = est.cr_predicted;
        assert!(lo < hi);
        assert!(
            lo > est.cr_stage12,
            "stage 3 + zlib should multiply the ratio"
        );
    }

    #[test]
    fn subset_count_respected() {
        // 170 features comfortably hold 5 subsets of >= 32 features each.
        let strat = SamplingStrategy {
            subsets: 5,
            picks: 3,
            ..Default::default()
        };
        let est = strat.estimate(&collinear_blocks(360, 170)).unwrap();
        assert_eq!(est.subset_ks.len(), 3);
    }

    #[test]
    fn small_feature_counts_collapse_to_one_subset() {
        // With M = 50 < 2 * MIN_SUBSET_FEATURES the estimator must fall back
        // to a single (full) subset rather than bias k_e down.
        let strat = SamplingStrategy {
            subsets: 10,
            picks: 3,
            ..Default::default()
        };
        let est = strat.estimate(&collinear_blocks(200, 50)).unwrap();
        assert_eq!(est.subset_ks.len(), 1);
    }

    #[test]
    fn single_pick_works() {
        let strat = SamplingStrategy {
            picks: 1,
            ..Default::default()
        };
        let est = strat.estimate(&collinear_blocks(100, 30)).unwrap();
        assert_eq!(est.subset_ks.len(), 1);
    }

    #[test]
    fn vif_profile_gives_one_value_per_target() {
        let profile = vif_profile(&collinear_blocks(200, 40), 0.05, 6).unwrap();
        assert_eq!(profile.len(), 6);
        assert!(profile.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn vif_profile_more_targets_than_features_clamped() {
        let profile = vif_profile(&white_blocks(100, 4), 0.5, 100).unwrap();
        assert!(profile.len() <= 4);
    }

    #[test]
    fn tiny_matrix_rejected() {
        let strat = SamplingStrategy::default();
        assert!(strat.estimate(&Matrix::zeros(1, 5)).is_err());
        assert!(strat.estimate(&Matrix::zeros(5, 1)).is_err());
    }

    #[test]
    fn tighter_tve_raises_k_estimate() {
        let blocks = collinear_blocks(300, 60);
        // Add a bit of noise so the spectrum has a tail.
        let mut noisy = blocks.clone();
        let mut s = 3u64;
        for i in 0..300 {
            for j in 0..60 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let nudge = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                noisy.set(i, j, noisy.get(i, j) + 0.01 * nudge);
            }
        }
        let loose = SamplingStrategy {
            tve: 0.99,
            ..Default::default()
        }
        .estimate(&noisy)
        .unwrap()
        .k_estimate;
        let tight = SamplingStrategy {
            tve: 0.99999999,
            ..Default::default()
        }
        .estimate(&noisy)
        .unwrap()
        .k_estimate;
        assert!(loose <= tight, "loose {loose} tight {tight}");
    }
}
