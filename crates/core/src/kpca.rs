//! Stage 2: k-PCA selection (Algorithm 1 of the paper).
//!
//! Given a fitted PCA model over the DCT-domain block matrix, choose how
//! many leading components `k` to retain:
//!
//! * **Method 1 — knee-point detection**: fit the cumulative
//!   total-variance-explained (TVE) curve, normalize it to the unit square,
//!   and take the first local maximum of its curvature (the "optimal
//!   information retrieval point"). Aggressive: highest CR for the most
//!   worthwhile information, no parameters to tune.
//! * **Method 2 — explained variance variation**: the smallest `k` whose
//!   TVE reaches the requested threshold ("three-nine" … "eight-nine").

use crate::config::KSelection;
use dpz_linalg::knee::{detect_knee, KneeOptions};
use dpz_linalg::Pca;

/// Result of a k selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KChoice {
    /// Retained component count, `1..=M`.
    pub k: usize,
    /// TVE actually achieved by keeping `k` components.
    pub tve_achieved: f64,
}

/// Select `k` for a fitted model under the configured method.
pub fn select_k(pca: &Pca, selection: KSelection) -> KChoice {
    let m = pca.n_features();
    let cum = pca.cumulative_tve();
    let k = match selection {
        KSelection::Fixed(k) => k.clamp(1, m),
        KSelection::Tve(threshold) => pca.k_for_tve(threshold),
        KSelection::KneePoint(fit) => {
            let opts = KneeOptions {
                fit,
                ..KneeOptions::default()
            };
            match detect_knee(&cum, opts) {
                Ok(Some(idx)) => (idx + 1).clamp(1, m),
                // No curvature (flat or degenerate curve): a single
                // component already explains everything that can be.
                _ => 1,
            }
        }
    };
    let tve_achieved = cum.get(k - 1).copied().unwrap_or(1.0);
    KChoice { k, tve_achieved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpz_linalg::fit::FitKind;
    use dpz_linalg::{Matrix, PcaOptions};

    /// Data with exactly `rank` strong directions plus faint noise.
    fn low_rank(n: usize, m: usize, rank: usize) -> Matrix {
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let loads: Vec<Vec<f64>> = (0..rank)
            .map(|r| (0..m).map(|j| ((r * 7 + j) as f64 * 0.37).sin()).collect())
            .collect();
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let factors: Vec<f64> = (0..rank).map(|r| next() * 10.0 / (r + 1) as f64).collect();
            rows.push(
                (0..m)
                    .map(|j| {
                        factors
                            .iter()
                            .zip(&loads)
                            .map(|(f, l)| f * l[j])
                            .sum::<f64>()
                            + 1e-4 * next()
                    })
                    .collect(),
            );
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn tve_method_reaches_threshold() {
        let pca = Pca::fit(&low_rank(200, 20, 3), PcaOptions::default()).unwrap();
        for threshold in [0.9, 0.999, 0.9999999] {
            let choice = select_k(&pca, KSelection::Tve(threshold));
            assert!(
                choice.tve_achieved >= threshold || choice.k == 20,
                "threshold {threshold}: k {} tve {}",
                choice.k,
                choice.tve_achieved
            );
        }
    }

    #[test]
    fn knee_method_finds_rank() {
        let pca = Pca::fit(&low_rank(300, 30, 4), PcaOptions::default()).unwrap();
        let choice = select_k(&pca, KSelection::KneePoint(FitKind::Interp1d));
        // The knee of a rank-4 spectrum must land near 4 components.
        assert!(
            (1..=8).contains(&choice.k),
            "knee landed far from the true rank: k = {}",
            choice.k
        );
        assert!(choice.tve_achieved > 0.9);
    }

    #[test]
    fn knee_polynomial_variant_works() {
        let pca = Pca::fit(&low_rank(300, 30, 4), PcaOptions::default()).unwrap();
        let choice = select_k(&pca, KSelection::KneePoint(FitKind::Polynomial(7)));
        assert!(choice.k >= 1 && choice.k <= 30);
    }

    #[test]
    fn fixed_is_clamped() {
        let pca = Pca::fit(&low_rank(50, 10, 2), PcaOptions::default()).unwrap();
        assert_eq!(select_k(&pca, KSelection::Fixed(0)).k, 1);
        assert_eq!(select_k(&pca, KSelection::Fixed(7)).k, 7);
        assert_eq!(select_k(&pca, KSelection::Fixed(99)).k, 10);
    }

    #[test]
    fn tighter_tve_needs_more_components() {
        let pca = Pca::fit(&low_rank(200, 25, 5), PcaOptions::default()).unwrap();
        let loose = select_k(&pca, KSelection::Tve(0.99)).k;
        let tight = select_k(&pca, KSelection::Tve(0.99999999)).k;
        assert!(loose <= tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn constant_data_selects_one() {
        let x = Matrix::from_vec(40, 6, vec![1.5; 240]).unwrap();
        let pca = Pca::fit(&x, PcaOptions::default()).unwrap();
        let choice = select_k(&pca, KSelection::Tve(0.999));
        assert_eq!(choice.k, 1);
        let knee = select_k(&pca, KSelection::KneePoint(FitKind::Interp1d));
        assert_eq!(knee.k, 1);
    }
}
