//! Stage 1: block decomposition and the block-wise DCT.
//!
//! The paper flattens arbitrary-dimensional data and rearranges it into `M`
//! 1-D blocks of `N` consecutive datapoints, keeping the original order so
//! each block inherits the locality of the source field (Section IV-A).
//! `M` must be smaller than `N` (PCA needs more samples than features) and,
//! empirically, the larger `M` the better the compression, so `N/M` is the
//! smallest integer ratio > 1 that factors the length — e.g. 128³ points
//! give `M = 1024, N = 2048`, and a 1800×3600 field gives
//! `M = 1800, N = 3600`, matching the paper's examples. Lengths with no
//! such factorization are padded (edge replication) to `M·N`.

use dpz_linalg::wavelet::{dwt_forward, dwt_inverse, max_levels_for, Wavelet};
use dpz_linalg::{Dct1d, Matrix};
use rayon::prelude::*;

/// Chosen block shape for a flattened length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Number of blocks (PCA features).
    pub m: usize,
    /// Datapoints per block (PCA samples).
    pub n: usize,
    /// Values appended to reach `m * n`.
    pub pad: usize,
}

/// Largest ratio `N/M` tried before falling back to padding.
const MAX_RATIO: usize = 64;
/// Smallest input treated with a real block decomposition; anything shorter
/// becomes a single degenerate block pair.
const MIN_LEN_FOR_BLOCKS: usize = 8;

/// Choose `(M, N)` for a flattened length.
///
/// Prefers an exact factorization `L = M·N` with `N = r·M` for the smallest
/// integer `r ≥ 2`; otherwise picks `M = ⌊√(L/2)⌋` and pads the tail.
pub fn choose_shape(len: usize) -> BlockShape {
    assert!(len >= 2, "cannot decompose fewer than two values");
    if len < MIN_LEN_FOR_BLOCKS {
        // Degenerate: two blocks, pad to even; keep n >= 2 so PCA has
        // at least two samples.
        let n = len.div_ceil(2).max(2);
        return BlockShape {
            m: 2,
            n,
            pad: 2 * n - len,
        };
    }
    for r in 2..=MAX_RATIO {
        if !len.is_multiple_of(r) {
            continue;
        }
        let m2 = len / r;
        let m = (m2 as f64).sqrt().round() as usize;
        if m >= 2 && m * m == m2 {
            return BlockShape {
                m,
                n: m * r,
                pad: 0,
            };
        }
    }
    // Fallback: target N/M ≈ 2 and pad the remainder.
    let m = ((len as f64 / 2.0).sqrt().floor() as usize).max(2);
    let n = len.div_ceil(m);
    BlockShape {
        m,
        n,
        pad: m * n - len,
    }
}

/// Rearrange flattened data into the `N x M` sample-by-feature matrix
/// (column `j` holds block `j`, i.e. `data[j*N .. (j+1)*N]`), padding the
/// tail by replicating the final value.
pub fn to_blocks(data: &[f32], shape: BlockShape) -> Matrix {
    to_blocks_in(data, shape, Vec::new())
}

/// [`to_blocks`] writing into caller-provided storage (resized as needed),
/// so a [`crate::stage::BufferPool`] can recycle the block matrix — the
/// pipeline's largest transient allocation — across executions.
pub fn to_blocks_in(data: &[f32], shape: BlockShape, mut storage: Vec<f64>) -> Matrix {
    assert_eq!(shape.m * shape.n, data.len() + shape.pad, "shape mismatch");
    let (m, n) = (shape.m, shape.n);
    let last = *data.last().expect("non-empty data") as f64;
    storage.clear();
    storage.resize(m * n, 0.0);
    let mut out = Matrix::from_vec(n, m, storage).expect("storage sized above");
    // out[(i, j)] = data[j*n + i]; iterate source-sequentially per block.
    for j in 0..m {
        let base = j * n;
        for i in 0..n {
            let idx = base + i;
            let v = if idx < data.len() {
                f64::from(data[idx])
            } else {
                last
            };
            out.set(i, j, v);
        }
    }
    out
}

/// Inverse of [`to_blocks`]: flatten the `N x M` matrix back into `len`
/// values (dropping padding).
pub fn from_blocks(blocks: &Matrix, shape: BlockShape, len: usize) -> Vec<f32> {
    assert_eq!(blocks.shape(), (shape.n, shape.m), "matrix/shape mismatch");
    assert_eq!(shape.m * shape.n, len + shape.pad, "length mismatch");
    let mut out = vec![0.0f32; len];
    for j in 0..shape.m {
        let base = j * shape.n;
        for i in 0..shape.n {
            let idx = base + i;
            if idx < len {
                out[idx] = blocks.get(i, j) as f32;
            }
        }
    }
    out
}

/// Apply the DCT-II to every block (column), in parallel. The matrix is
/// `N x M`; each column is one block of length `N`.
pub fn dct_blocks(blocks: &Matrix) -> Matrix {
    transform_blocks(blocks, true)
}

/// Apply the inverse DCT (DCT-III) to every block.
pub fn idct_blocks(blocks: &Matrix) -> Matrix {
    transform_blocks(blocks, false)
}

/// Fused ingest: normalize raw values straight into a block-major scratch,
/// DCT every block in place, and transpose once into the samples-by-features
/// coefficient matrix. Equivalent to `to_blocks` + normalize + [`dct_blocks`]
/// but with one transpose instead of three passes over the data (the raw
/// layout *is* block-major, so the fill is sequential on both sides).
/// Returns the coefficient matrix and the scratch buffer for pool reuse.
pub fn dct_blocks_from_raw(
    data: &[f32],
    shape: BlockShape,
    norm_min: f64,
    norm_range: f64,
    storage: Vec<f64>,
) -> (Matrix, Vec<f64>) {
    assert_eq!(shape.m * shape.n, data.len() + shape.pad, "shape mismatch");
    let (m, n) = (shape.m, shape.n);
    let last = *data.last().expect("non-empty data");
    let mut buf = storage;
    buf.clear();
    buf.resize(m * n, 0.0);
    for j in 0..m {
        let base = j * n;
        let row = &mut buf[base..base + n];
        for (i, v) in row.iter_mut().enumerate() {
            let idx = base + i;
            let s = if idx < data.len() { data[idx] } else { last };
            *v = (f64::from(s) - norm_min) / norm_range - 0.5;
        }
    }
    let plan = Dct1d::new(n);
    buf.par_chunks_mut(2 * n).for_each(|pair| {
        if pair.len() == 2 * n {
            let (a, b) = pair.split_at_mut(n);
            plan.forward_pair(a, b);
        } else {
            plan.forward(pair);
        }
    });
    let bm = Matrix::from_vec(m, n, buf).expect("storage sized above");
    let coeffs = bm.transpose();
    (coeffs, bm.into_vec())
}

/// Fused inverse of [`dct_blocks_from_raw`]: transpose the coefficient
/// matrix once into block-major form, inverse-DCT every block in place, and
/// denormalize straight into the flattened output (dropping padding).
pub fn idct_blocks_to_raw(
    coeffs: &Matrix,
    shape: BlockShape,
    norm_min: f64,
    norm_range: f64,
    len: usize,
) -> Vec<f32> {
    assert_eq!(coeffs.shape(), (shape.n, shape.m), "matrix/shape mismatch");
    assert_eq!(shape.m * shape.n, len + shape.pad, "length mismatch");
    let (m, n) = (shape.m, shape.n);
    let bt = coeffs.transpose();
    let mut buf = bt.into_vec();
    let plan = Dct1d::new(n);
    buf.par_chunks_mut(2 * n).for_each(|pair| {
        if pair.len() == 2 * n {
            let (a, b) = pair.split_at_mut(n);
            plan.inverse_pair(a, b);
        } else {
            plan.inverse(pair);
        }
    });
    let mut out = vec![0.0f32; len];
    for j in 0..m {
        let base = j * n;
        let take = n.min(len.saturating_sub(base));
        let row = &buf[base..base + take];
        for (slot, &v) in out[base..base + take].iter_mut().zip(row) {
            *slot = ((v + 0.5) * norm_range + norm_min) as f32;
        }
    }
    out
}

/// Clamp a requested DWT depth to what block length `n` supports.
pub fn effective_dwt_levels(n: usize, requested: usize) -> usize {
    max_levels_for(n, requested)
}

/// Apply a multi-level Daubechies-4 DWT to every block (column), in
/// parallel — the paper's "PCA in other transform domains" variant. The
/// level count must already be feasible for the block length (use
/// [`effective_dwt_levels`]).
pub fn dwt_blocks(blocks: &Matrix, levels: usize) -> Matrix {
    wavelet_blocks(blocks, levels, true)
}

/// Inverse of [`dwt_blocks`].
pub fn idwt_blocks(blocks: &Matrix, levels: usize) -> Matrix {
    wavelet_blocks(blocks, levels, false)
}

fn wavelet_blocks(blocks: &Matrix, levels: usize, forward: bool) -> Matrix {
    let (n, m) = blocks.shape();
    assert_eq!(
        levels,
        max_levels_for(n, levels),
        "infeasible DWT depth for block length {n}"
    );
    let bt = blocks.transpose();
    let mut data = bt.into_vec();
    data.par_chunks_mut(n).for_each(|row| {
        let r = if forward {
            dwt_forward(row, Wavelet::Db4, levels)
        } else {
            dwt_inverse(row, Wavelet::Db4, levels)
        };
        r.expect("levels validated above");
    });
    Matrix::from_vec(m, n, data)
        .expect("shape preserved")
        .transpose()
}

fn transform_blocks(blocks: &Matrix, forward: bool) -> Matrix {
    let (n, m) = blocks.shape();
    let plan = Dct1d::new(n);
    // Work block-major (transpose) so each DCT reads contiguous memory,
    // then transpose back to samples x features.
    let bt = blocks.transpose(); // m x n, row j = block j
    let mut data = bt.into_vec();
    // Two blocks per task: the paired DCT runs both through one complex FFT
    // (two-for-one real-input transform), nearly halving the per-block cost.
    data.par_chunks_mut(2 * n).for_each(|pair| {
        if pair.len() == 2 * n {
            let (a, b) = pair.split_at_mut(n);
            if forward {
                plan.forward_pair(a, b);
            } else {
                plan.inverse_pair(a, b);
            }
        } else if forward {
            plan.forward(pair);
        } else {
            plan.inverse(pair);
        }
    });
    Matrix::from_vec(m, n, data)
        .expect("shape preserved")
        .transpose()
}

/// Copy an axis-aligned sub-region (`lo..hi` per axis, row-major) out of a
/// flattened array. The innermost axis is contiguous, so the copy walks an
/// odometer over the outer axes and memcpys one innermost run per step.
///
/// Callers validate the region (`region.len() == dims.len()`, every range
/// non-empty and within its axis); an empty range yields an empty result.
pub fn extract_region(
    values: &[f32],
    dims: &[usize],
    region: &[std::ops::Range<usize>],
) -> Vec<f32> {
    assert_eq!(dims.len(), region.len(), "region rank must match dims");
    if region.iter().any(|r| r.start >= r.end) {
        return Vec::new();
    }
    let out_len: usize = region.iter().map(|r| r.end - r.start).product();
    let mut out = Vec::with_capacity(out_len);
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len() - 1).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    let inner = dims.len() - 1;
    let mut idx: Vec<usize> = region[..inner].iter().map(|r| r.start).collect();
    loop {
        let base: usize = idx.iter().zip(&strides[..inner]).map(|(i, s)| i * s).sum();
        out.extend_from_slice(&values[base + region[inner].start..base + region[inner].end]);
        let mut axis = inner;
        loop {
            if axis == 0 {
                return out;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < region[axis].end {
                break;
            }
            idx[axis] = region[axis].start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_region_crops_rectangles() {
        // 3x4: rows of 4.
        let vals: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let got = extract_region(&vals, &[3, 4], &[1..3, 1..3]);
        assert_eq!(got, vec![5.0, 6.0, 9.0, 10.0]);
        // Whole array.
        assert_eq!(extract_region(&vals, &[3, 4], &[0..3, 0..4]), vals);
        // 1-D slice.
        #[allow(clippy::single_range_in_vec_init)] // a 1-D region IS one range
        let got_1d = extract_region(&vals, &[12], &[3..6]);
        assert_eq!(got_1d, vec![3.0, 4.0, 5.0]);
        // Empty range -> empty output.
        assert!(extract_region(&vals, &[3, 4], &[1..1, 0..4]).is_empty());
    }

    #[test]
    fn extract_region_handles_three_axes() {
        // 2x3x4 row-major.
        let vals: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let got = extract_region(&vals, &[2, 3, 4], &[1..2, 0..2, 2..4]);
        // Plane 1, rows 0..2, cols 2..4: offsets 12+{2,3,6,7}.
        assert_eq!(got, vec![14.0, 15.0, 18.0, 19.0]);
    }

    #[test]
    fn paper_examples_reproduced() {
        // 128^3 -> M=1024, N=2048 (ratio 2).
        let s = choose_shape(128 * 128 * 128);
        assert_eq!((s.m, s.n, s.pad), (1024, 2048, 0));
        // 1800x3600 -> M=1800, N=3600.
        let s = choose_shape(1800 * 3600);
        assert_eq!((s.m, s.n, s.pad), (1800, 3600, 0));
        // HACC 2^21 -> 1024 x 2048.
        let s = choose_shape(2 * 1024 * 1024);
        assert_eq!((s.m, s.n, s.pad), (1024, 2048, 0));
    }

    #[test]
    fn shape_invariants_hold_for_many_lengths() {
        for len in [8usize, 13, 100, 1000, 4096, 65536, 100_003, 262144, 405_000] {
            let s = choose_shape(len);
            assert!(s.m >= 2, "len {len}: m {}", s.m);
            assert!(s.m < s.n, "len {len}: m {} !< n {}", s.m, s.n);
            assert_eq!(s.m * s.n, len + s.pad, "len {len}");
            assert!(
                s.pad < s.m.max(64),
                "len {len}: excessive padding {}",
                s.pad
            );
        }
    }

    #[test]
    fn prime_length_pads() {
        let s = choose_shape(100_003); // prime
        assert!(s.pad > 0);
        assert_eq!(s.m * s.n, 100_003 + s.pad);
    }

    #[test]
    fn blocks_round_trip_exact_shape() {
        let data: Vec<f32> = (0..512).map(|i| i as f32 * 0.25).collect();
        let shape = choose_shape(512);
        let blocks = to_blocks(&data, shape);
        assert_eq!(blocks.shape(), (shape.n, shape.m));
        let back = from_blocks(&blocks, shape, 512);
        assert_eq!(back, data);
    }

    #[test]
    fn blocks_round_trip_with_padding() {
        let data: Vec<f32> = (0..997).map(|i| (i as f32).sin()).collect();
        let shape = choose_shape(997);
        let blocks = to_blocks(&data, shape);
        let back = from_blocks(&blocks, shape, 997);
        assert_eq!(back, data);
    }

    #[test]
    fn block_columns_preserve_locality() {
        // Column j of the matrix must be the j-th consecutive chunk.
        let data: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let shape = choose_shape(128); // 8 x 16
        let blocks = to_blocks(&data, shape);
        let col0 = blocks.col(0);
        for (i, v) in col0.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
        let col1 = blocks.col(1);
        assert_eq!(col1[0], shape.n as f64);
    }

    #[test]
    fn dct_blocks_invertible() {
        let data: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.013).cos()).collect();
        let shape = choose_shape(1024);
        let blocks = to_blocks(&data, shape);
        let coeffs = dct_blocks(&blocks);
        let back = idct_blocks(&coeffs);
        assert!(back.max_abs_diff(&blocks) < 1e-9);
    }

    #[test]
    fn dct_blocks_matches_per_block_dct() {
        use dpz_linalg::dct::dct2;
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
        let shape = choose_shape(256);
        let blocks = to_blocks(&data, shape);
        let coeffs = dct_blocks(&blocks);
        // Independently transform block 3.
        let block3: Vec<f64> = blocks.col(3);
        let expect = dct2(&block3);
        let got = coeffs.col(3);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn dwt_blocks_invertible() {
        let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.021).sin()).collect();
        let shape = choose_shape(2048);
        let blocks = to_blocks(&data, shape);
        let levels = effective_dwt_levels(shape.n, 4);
        assert!(levels > 0);
        let coeffs = dwt_blocks(&blocks, levels);
        let back = idwt_blocks(&coeffs, levels);
        assert!(back.max_abs_diff(&blocks) < 1e-9);
    }

    #[test]
    fn dwt_blocks_compact_energy() {
        let data: Vec<f32> = (0..2048)
            .map(|i| (std::f32::consts::PI * i as f32 / 2048.0).sin())
            .collect();
        let shape = choose_shape(2048);
        let levels = effective_dwt_levels(shape.n, 4);
        let coeffs = dwt_blocks(&to_blocks(&data, shape), levels);
        for j in 0..shape.m {
            let col = coeffs.col(j);
            let total: f64 = col.iter().map(|v| v * v).sum();
            let head_len = (col.len() >> levels).max(1);
            let head: f64 = col[..head_len].iter().map(|v| v * v).sum();
            // Periodic Db4 leaks some boundary energy into details; the
            // approximation band still dominates.
            assert!(
                head / total > 0.85,
                "block {j}: head ratio {}",
                head / total
            );
        }
    }

    #[test]
    fn effective_levels_clamped() {
        assert_eq!(effective_dwt_levels(16, 10), 4);
        assert_eq!(effective_dwt_levels(900, 4), 2); // 900 = 4 * 225
        assert_eq!(effective_dwt_levels(7, 3), 0);
    }

    #[test]
    fn smooth_data_energy_compacts_per_block() {
        let data: Vec<f32> = (0..2048)
            .map(|i| (std::f32::consts::PI * i as f32 / 2048.0).sin())
            .collect();
        let shape = choose_shape(2048);
        let coeffs = dct_blocks(&to_blocks(&data, shape));
        // For every block, most energy should sit in the first coefficients.
        for j in 0..shape.m {
            let col = coeffs.col(j);
            let total: f64 = col.iter().map(|v| v * v).sum();
            let head: f64 = col[..4.min(col.len())].iter().map(|v| v * v).sum();
            assert!(
                head / total > 0.99,
                "block {j}: head ratio {}",
                head / total
            );
        }
    }

    #[test]
    fn tiny_inputs_get_degenerate_shape() {
        let s = choose_shape(5);
        assert_eq!(s.m, 2);
        assert_eq!(s.m * s.n, 5 + s.pad);
        let data = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let blocks = to_blocks(&data, s);
        assert_eq!(from_blocks(&blocks, s, 5), data);
    }

    #[test]
    #[should_panic(expected = "fewer than two")]
    fn rejects_single_value() {
        choose_shape(1);
    }
}
