//! Steady-state allocation discipline for the stage-1 transform.
//!
//! The PR-2 acceptance bar: transforming a 256x1024 field does O(1) heap
//! allocations once warm — the per-worker DCT/FFT scratch must absorb the
//! former per-block `vec![Complex; n]`. A counting global allocator makes
//! the bound measurable; this file is its own test binary because
//! `#[global_allocator]` is per-binary and the thread-count pin must happen
//! before the pool exists.

use dpz_core::decompose::{choose_shape, dct_blocks, idct_blocks};
use dpz_linalg::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn transform_blocks_is_alloc_free_after_warmup() {
    // Pin the pool before first use so the bound is host-independent.
    std::env::set_var("DPZ_THREADS", "4");

    // A 256x1024 field: shape m=256 blocks of length n=1024 (radix-2 FFT).
    let shape = choose_shape(256 * 1024);
    assert_eq!((shape.m, shape.n), (256, 1024));
    let data: Vec<f64> = (0..shape.m * shape.n)
        .map(|i| (i as f64 * 0.001).sin())
        .collect();
    let blocks = Matrix::from_vec(shape.n, shape.m, data).unwrap();

    // Warm-up: builds the pool, per-thread scratch, transpose buffers.
    let warm = dct_blocks(&blocks);
    let _ = idct_blocks(&warm);

    // Steady state: the only allocations left are the O(workers) transpose /
    // fan-out bookkeeping — emphatically NOT O(m) per-block scratch vectors.
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = dct_blocks(&blocks);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(
        delta <= 64,
        "dct_blocks did {delta} allocations in steady state (expected <= 64; \
         per-block scratch would cost >= {})",
        shape.m
    );

    // And the result still inverts correctly.
    let round = idct_blocks(&out);
    let err = round.max_abs_diff(&blocks);
    assert!(err < 1e-9, "round-trip error {err}");
}

#[test]
fn dct_2d_with_scratch_is_alloc_free_after_warmup() {
    use dpz_linalg::dct::{dct2_2d_with, dct3_2d_with, Dct2dScratch};

    // Non-power-of-two row length exercises the Bluestein FFT path; the
    // power-of-two column length interleaves the direct radix-2 path through
    // the same cached scratch, so this also proves the twiddle/chirp caches
    // tolerate alternating transform sizes without reallocating.
    let (rows, cols) = (64usize, 96usize);
    let mut buf: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.013).cos()).collect();
    let orig = buf.clone();
    let mut scratch = Dct2dScratch::new();

    // Warm-up builds both 1-D plans and every FFT/DCT buffer.
    dct2_2d_with(&mut buf, rows, cols, &mut scratch);
    dct3_2d_with(&mut buf, rows, cols, &mut scratch);

    let before = ALLOCS.load(Ordering::Relaxed);
    dct2_2d_with(&mut buf, rows, cols, &mut scratch);
    dct3_2d_with(&mut buf, rows, cols, &mut scratch);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "2-D DCT with warm scratch performed {delta} allocations"
    );

    // Two forward/inverse round trips must still reproduce the input.
    let err = buf
        .iter()
        .zip(&orig)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-9, "2-D round-trip error {err}");
}
