#!/usr/bin/env bash
# Public-API surface guard.
#
# Regenerates a deterministic listing of every `pub` item declaration in the
# workspace's library sources and diffs it against the checked-in golden
# (api.txt). CI runs this so any change to the public surface shows up as an
# explicit diff in review; after an intentional API change, refresh the
# golden with:
#
#   ./scripts/check_public_api.sh --bless
#
# The listing is declaration-granular (file + first line of the item), which
# is what a from-source guard can promise: it catches added/removed/renamed
# items and changed first-line signatures, not edits confined to later lines
# of a multi-line signature.
set -euo pipefail
cd "$(dirname "$0")/.."

golden="api.txt"

generate() {
    # Library sources only: bins, examples, tests, and benches are not API.
    find src crates/*/src -name '*.rs' | LC_ALL=C sort | while read -r f; do
        # Visible `pub` items; pub(crate)/pub(super)/pub(in …) are not public.
        grep -HE '^[[:space:]]*pub[[:space:]]+(fn|struct|enum|trait|mod|const|static|type|use|unsafe fn)[[:space:]>]' "$f" 2>/dev/null \
            | sed -E 's/[[:space:]]+/ /g; s/ \{.*$//; s/;[[:space:]]*$//' \
            || true
    done
}

if [[ "${1:-}" == "--bless" ]]; then
    generate > "$golden"
    echo "refreshed $golden ($(wc -l < "$golden") public items)"
    exit 0
fi

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
generate > "$current"

if ! diff -u "$golden" "$current"; then
    echo
    echo "public API surface changed: review the diff above and refresh the"
    echo "golden with ./scripts/check_public_api.sh --bless" >&2
    exit 1
fi
echo "public API surface matches $golden ($(wc -l < "$golden") items)"
