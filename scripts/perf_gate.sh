#!/usr/bin/env bash
# Performance regression gate.
#
# Builds the release perf_gate binary, measures the hot end-to-end paths
# (best-of-N wall clock on the Figure 8 field) and compares them against the
# checked-in baseline, failing when any DPZ path regresses by more than the
# allowed percentage after canary normalization (the SZ timing absorbs host
# speed drift between runs).
#
#   ./scripts/perf_gate.sh                      # gate vs newest BENCH_pr*.json
#   ./scripts/perf_gate.sh --baseline B.json    # gate vs a specific baseline
#   ./scripts/perf_gate.sh --bless B.json       # re-measure, write a fresh
#                                               # gate document to B.json
#
# Extra flags (--samples N, --max-regress PCT) pass through to the binary.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bless" ]]; then
    out="${2:?--bless needs an output path}"
    cargo run --release -q -p dpz-bench --bin perf_gate -- --out "$out"
    exit 0
fi

args=("$@")
if [[ ! " ${args[*]-} " == *" --baseline "* ]]; then
    # Default to the newest checked-in baseline that has a gate section.
    baseline=""
    for f in $(ls -1 BENCH_pr*.json 2>/dev/null | sort -rV); do
        if grep -q '"gate"' "$f"; then baseline="$f"; break; fi
    done
    [[ -n "$baseline" ]] || { echo "no BENCH_pr*.json with a 'gate' section; run --bless first" >&2; exit 2; }
    args+=(--baseline "$baseline")
fi

cargo run --release -q -p dpz-bench --bin perf_gate -- "${args[@]}"
