//! Chunked parallel compression — the scalability pattern the paper lists
//! as future work ("we plan to expand the DPZ algorithm to exploit
//! parallelism for better scalability").
//!
//! Uses `dpz::core::compress_chunked`: the field is split into independent
//! slabs along its slowest axis; each slab is compressed as its own DPZ
//! stream on a rayon worker. Slabs decompress independently too, which also
//! buys random access at slab granularity (`decompress_chunk`).
//!
//! ```text
//! cargo run --release --example parallel_chunks
//! ```

use dpz::prelude::*;
use std::time::Instant;

/// Number of slabs along the slowest axis.
const SLABS: usize = 8;

fn main() {
    let ds = Dataset::generate(DatasetKind::Channel, Scale::Default, 2021);
    let (nx, ny, nz) = (ds.dims[0], ds.dims[1], ds.dims[2]);
    let cfg = DpzConfig::strict().with_tve(TveLevel::FiveNines);
    println!(
        "field {nx}x{ny}x{nz} ({:.1} MB), {SLABS} slabs, {} rayon threads",
        ds.nbytes() as f64 / 1e6,
        rayon::current_num_threads()
    );

    // Sequential whole-field baseline.
    let t = Instant::now();
    let whole = dpz::core::compress(&ds.data, &ds.dims, &cfg).expect("compress");
    let t_seq = t.elapsed();

    // Parallel slabs through the chunked API.
    let t = Instant::now();
    let chunked = dpz::core::compress_chunked(&ds.data, &ds.dims, &cfg, SLABS).expect("chunked");
    let t_par = t.elapsed();

    // Random access: decode just the middle slab.
    let (slab, slab_dims) = dpz::core::decompress_chunk(&chunked.bytes, SLABS / 2).expect("slab");
    println!(
        "random access: slab {} of {} -> {:?} ({} values)",
        SLABS / 2,
        SLABS,
        slab_dims,
        slab.len()
    );

    // Full parallel decompression.
    let (restored, _) = dpz::core::decompress_chunked(&chunked.bytes).expect("decompress");
    assert_eq!(restored.len(), ds.len());
    let report = QualityReport::evaluate(&ds.data, &restored, chunked.bytes.len());
    println!(
        "\nwhole-field : {:.1}x in {:.2}s",
        whole.stats.cr_total,
        t_seq.as_secs_f64()
    );
    println!(
        "slab-parallel: {:.1}x in {:.2}s ({:.2}x speedup), PSNR {:.1} dB",
        report.compression_ratio,
        t_par.as_secs_f64(),
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
        report.psnr
    );
    println!(
        "note: slabs trade a little ratio (per-slab model overhead) for\n\
         near-linear compression scaling and slab-level random access."
    );
}
