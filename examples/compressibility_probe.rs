//! Compressibility estimation before compressing (Algorithm 2): probe each
//! dataset's VIF, get a predicted compression-ratio range, then compress
//! for real and compare. This is the paper's "preliminary reduction
//! estimation" workflow — decide *whether* a field is worth the DPZ CPU
//! time before spending it.
//!
//! ```text
//! cargo run --release --example compressibility_probe
//! ```

use dpz::core::decompose;
use dpz::core::sampling::{SamplingStrategy, VIF_CUTOFF};
use dpz::prelude::*;

fn main() {
    println!(
        "{:<10} {:>8} {:>6} {:>5} {:>16} {:>10}  verdict",
        "dataset", "VIF", "low?", "k_e", "predicted CR", "actual CR"
    );
    for ds in standard_suite(Scale::Small) {
        // Probe (cheap): decompose + DCT + sampled estimate.
        let shape = decompose::choose_shape(ds.len());
        let coeffs = decompose::dct_blocks(&decompose::to_blocks(&ds.data, shape));
        let strat = SamplingStrategy {
            tve: TveLevel::FiveNines.fraction(),
            ..Default::default()
        };
        let est = match strat.estimate(&coeffs) {
            Ok(e) => e,
            Err(e) => {
                println!("{:<10} probe failed: {e}", ds.name);
                continue;
            }
        };

        // Compress (expensive) only to validate the prediction here.
        let cfg = DpzConfig::loose()
            .with_tve(TveLevel::FiveNines)
            .with_sampling(true);
        let actual = dpz::core::compress(&ds.data, &ds.dims, &cfg)
            .map(|o| o.stats.cr_total)
            .unwrap_or(f64::NAN);

        let verdict = if est.vif < VIF_CUTOFF {
            "skip DPZ: low linearity"
        } else if est.cr_predicted.0 > 10.0 {
            "highly compressible"
        } else {
            "compressible"
        };
        println!(
            "{:<10} {:>8.1} {:>6} {:>5} {:>7.1}-{:<7.1} {:>10.1}  {}",
            ds.name,
            est.vif,
            if est.low_linearity { "yes" } else { "no" },
            est.k_estimate,
            est.cr_predicted.0,
            est.cr_predicted.1,
            actual,
            verdict
        );
    }
}
