//! Climate-archive scenario: a post-processing pipeline must shrink five
//! CESM-ATM fields for long-term storage with a quality floor of ~55 dB
//! PSNR. Compares DPZ against the SZ- and ZFP-style baselines at matched
//! quality and reports where each wins — the paper's headline use case.
//!
//! ```text
//! cargo run --release --example climate_archive
//! ```

use dpz::prelude::*;
use dpz::zfp::ZfpMode;

const QUALITY_FLOOR_DB: f64 = 55.0;

/// Smallest-bitrate run of `runs` whose PSNR clears the floor.
fn best_at_quality(runs: Vec<(String, QualityReport)>) -> Option<(String, QualityReport)> {
    runs.into_iter()
        .filter(|(_, r)| r.psnr >= QUALITY_FLOOR_DB)
        .min_by(|a, b| a.1.bit_rate.partial_cmp(&b.1.bit_rate).unwrap())
}

fn main() {
    let fields = [
        DatasetKind::Cldhgh,
        DatasetKind::Cldlow,
        DatasetKind::Phis,
        DatasetKind::Freqsh,
        DatasetKind::Fldsc,
    ];
    println!("climate archive: best compressor per field at >= {QUALITY_FLOOR_DB} dB PSNR\n");
    println!(
        "{:<8} {:<22} {:>8} {:>10} {:>10}",
        "field", "winner", "CR", "bits/val", "PSNR dB"
    );

    let mut total_orig = 0usize;
    let mut total_best = 0.0f64;
    for kind in fields {
        let ds = Dataset::generate(kind, Scale::Small, 2021);
        total_orig += ds.nbytes();

        let mut runs: Vec<(String, QualityReport)> = Vec::new();
        // DPZ: sweep the TVE dial.
        for level in TveLevel::SWEEP {
            let cfg = DpzConfig::strict().with_tve(level);
            if let Ok(out) = dpz::core::compress(&ds.data, &ds.dims, &cfg) {
                if let Ok((recon, _)) = dpz::core::decompress(&out.bytes) {
                    runs.push((
                        format!("DPZ-s tve={}nines", level.nines()),
                        QualityReport::evaluate(&ds.data, &recon, out.bytes.len()),
                    ));
                }
            }
        }
        // SZ: sweep relative bounds.
        for rel in [1e-2, 1e-3, 1e-4, 1e-5] {
            let range = dpz::data::metrics::value_range(&ds.data).max(f64::MIN_POSITIVE);
            let cfg = dpz::sz::SzConfig::with_error_bound(rel * range);
            let bytes = dpz::sz::compress(&ds.data, &ds.dims, &cfg);
            if let Ok((recon, _)) = dpz::sz::decompress(&bytes) {
                runs.push((
                    format!("SZ rel={rel:.0e}"),
                    QualityReport::evaluate(&ds.data, &recon, bytes.len()),
                ));
            }
        }
        // ZFP: sweep precisions.
        for prec in [10u32, 14, 18, 22, 26] {
            let bytes = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(prec));
            if let Ok((recon, _)) = dpz::zfp::decompress(&bytes) {
                runs.push((
                    format!("ZFP prec={prec}"),
                    QualityReport::evaluate(&ds.data, &recon, bytes.len()),
                ));
            }
        }

        match best_at_quality(runs) {
            Some((winner, report)) => {
                total_best += ds.nbytes() as f64 / report.compression_ratio;
                println!(
                    "{:<8} {:<22} {:>7.1}x {:>10.3} {:>10.1}",
                    ds.name, winner, report.compression_ratio, report.bit_rate, report.psnr
                );
            }
            None => println!("{:<8} no run met the quality floor", ds.name),
        }
    }
    println!(
        "\narchive total: {:.2} MB -> {:.2} MB ({:.1}x)",
        total_orig as f64 / 1e6,
        total_best / 1e6,
        total_orig as f64 / total_best
    );
}
