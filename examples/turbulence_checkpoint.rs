//! Checkpoint/restart scenario: a turbulence solver wants aggressive
//! checkpoint compression and can tolerate small restart perturbations.
//! Uses DPZ's knee-point mode (no parameter tuning — the compressor finds
//! the optimal tradeoff itself, Section IV-B1 of the paper) and verifies
//! the restart field stays within a tolerance of the original.
//!
//! ```text
//! cargo run --release --example turbulence_checkpoint
//! ```

use dpz::linalg::fit::FitKind;
use dpz::prelude::*;

fn main() {
    let ds = Dataset::generate(DatasetKind::Isotropic, Scale::Small, 7);
    let range = dpz::data::metrics::value_range(&ds.data);
    println!(
        "checkpoint: {} {}³ velocity field, range {:.2}",
        ds.name, ds.dims[0], range
    );

    for (label, fit) in [
        ("knee-point (1D fit)", FitKind::Interp1d),
        ("knee-point (polyn fit)", FitKind::Polynomial(7)),
    ] {
        let cfg = DpzConfig::strict().with_selection(KSelection::KneePoint(fit));
        let out = dpz::core::compress(&ds.data, &ds.dims, &cfg).expect("compress");
        let (restart, _) = dpz::core::decompress(&out.bytes).expect("decompress");
        let report = QualityReport::evaluate(&ds.data, &restart, out.bytes.len());

        // Restart acceptance: max pointwise perturbation below 2% of range.
        let ok = report.max_abs_error <= 0.02 * range;
        println!("\n{label}: k={} (auto-detected)", out.stats.k);
        println!(
            "  CR {:.1}x | PSNR {:.1} dB | max err {:.3e} ({:.3}% of range) -> restart {}",
            report.compression_ratio,
            report.psnr,
            report.max_abs_error,
            100.0 * report.max_abs_error / range,
            if ok {
                "ACCEPTED"
            } else {
                "REJECTED (fall back to a TVE level)"
            }
        );
    }

    // The fallback path a production harness would take: explicit TVE dial.
    let cfg = DpzConfig::strict().with_tve(TveLevel::SevenNines);
    let out = dpz::core::compress(&ds.data, &ds.dims, &cfg).expect("compress");
    let (restart, _) = dpz::core::decompress(&out.bytes).expect("decompress");
    let report = QualityReport::evaluate(&ds.data, &restart, out.bytes.len());
    println!(
        "\nseven-nine TVE fallback: CR {:.1}x | PSNR {:.1} dB | max err {:.3}% of range",
        report.compression_ratio,
        report.psnr,
        100.0 * report.max_abs_error / range
    );
}
