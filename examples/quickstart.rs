//! Quickstart: compress a small synthetic climate field with both DPZ
//! schemes and print rate/quality numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpz::prelude::*;

fn main() {
    // A 180x360 CESM-like clear-sky flux field (synthetic analogue).
    let ds = Dataset::generate(DatasetKind::Fldsc, Scale::Small, 2021);
    println!(
        "dataset {} ({}x{} f32, {:.2} MB)",
        ds.name,
        ds.dims[0],
        ds.dims[1],
        ds.nbytes() as f64 / 1e6
    );

    for (label, cfg) in [
        ("DPZ-l (loose, P=1e-3, 1-byte)", DpzConfig::loose()),
        ("DPZ-s (strict, P=1e-4, 2-byte)", DpzConfig::strict()),
    ] {
        let cfg = cfg.with_tve(TveLevel::FiveNines);
        let out = dpz::core::compress(&ds.data, &ds.dims, &cfg).expect("compress");
        let (recon, dims) = dpz::core::decompress(&out.bytes).expect("decompress");
        assert_eq!(dims, ds.dims);

        let report = QualityReport::evaluate(&ds.data, &recon, out.bytes.len());
        println!("\n{label}");
        println!(
            "  ratio {:.1}x | {:.3} bits/value | PSNR {:.1} dB | max err {:.2e} | θ {:.2e}",
            report.compression_ratio,
            report.bit_rate,
            report.psnr,
            report.max_abs_error,
            report.mean_rel_error
        );
        println!(
            "  pipeline: M={} blocks x N={} points, k={} components (TVE {:.5})",
            out.stats.m, out.stats.n, out.stats.k, out.stats.tve_achieved
        );
        println!(
            "  stage ratios: decomposition+PCA {:.2}x, quantization {:.2}x, lossless {:.2}x",
            out.stats.cr_stage12, out.stats.cr_stage3, out.stats.cr_zlib
        );
    }
}
