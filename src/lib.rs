//! # dpz
//!
//! Façade crate for the DPZ reproduction workspace (Zhang et al., *"DPZ:
//! Improving Lossy Compression Ratio with Information Retrieval on
//! Scientific Data"*, IEEE CLUSTER 2021). Re-exports the public API of every
//! member crate so downstream users can depend on a single crate:
//!
//! * [`core`] — the DPZ compressor itself (compress / decompress / sampling),
//! * [`codec`] — the unified `Codec` trait, format registry, and
//!   sampling-driven [`AutoCodec`](codec::AutoCodec) backend selector,
//! * [`sz`] and [`zfp`] — the SZ-style and ZFP-style baseline compressors,
//! * [`data`] — synthetic dataset generators and quality metrics,
//! * [`linalg`] — the DCT/FFT/PCA/knee-point numerical substrate,
//! * [`deflate`] — the from-scratch zlib/DEFLATE implementation.
//!
//! ```
//! use dpz::prelude::*;
//!
//! let ds = Dataset::generate(DatasetKind::Fldsc, Scale::Tiny, 2021);
//! let out = compress(&ds.data, &ds.dims, &DpzConfig::loose()).unwrap();
//! let (restored, dims) = decompress(&out.bytes).unwrap();
//! assert_eq!(dims, ds.dims);
//! assert_eq!(restored.len(), ds.data.len());
//! ```

#![warn(missing_docs)]

pub use dpz_codec as codec;
pub use dpz_core as core;
pub use dpz_data as data;
pub use dpz_deflate as deflate;
pub use dpz_linalg as linalg;
pub use dpz_sz as sz;
pub use dpz_zfp as zfp;

/// Most-used items in one import.
pub mod prelude {
    pub use dpz_codec::{AutoCodec, Codec, CodecProbe, Registry};
    pub use dpz_core::{
        compress, compress_with_breakdown, decompress, DpzConfig, DpzError, IndexWidth, KSelection,
        QualityTarget, Scheme, Stage1Transform, Standardize, TveLevel,
    };
    pub use dpz_data::{standard_suite, Dataset, DatasetKind, QualityReport, Scale};
}
