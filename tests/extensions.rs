//! Integration tests for the extension features: the DWT stage-1 variant,
//! SZ's hybrid regression predictor, and ZFP's fixed-rate mode — exercised
//! across the full dataset suite rather than toy inputs.

use dpz::prelude::*;
use dpz::sz::{Predictor, SzConfig};
use dpz::zfp::ZfpMode;
use dpz_data::metrics::value_range;

#[test]
fn dwt_variant_round_trips_suite_wide() {
    for ds in standard_suite(Scale::Tiny) {
        let cfg = DpzConfig::strict()
            .with_tve(TveLevel::SixNines)
            .with_transform(Stage1Transform::Dwt { levels: 4 });
        let out = dpz::core::compress(&ds.data, &ds.dims, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", ds.name));
        let (recon, dims) = dpz::core::decompress(&out.bytes).unwrap();
        assert_eq!(dims, ds.dims, "{}", ds.name);
        let report = QualityReport::evaluate(&ds.data, &recon, out.bytes.len());
        assert!(
            report.psnr > 28.0,
            "{}: DWT PSNR {:.1}",
            ds.name,
            report.psnr
        );
    }
}

#[test]
fn dct_and_dwt_pick_similar_component_counts() {
    // The PCA stage runs on an orthonormal rotation either way, so the
    // variance spectrum — and therefore k at a fixed TVE — should be close.
    let ds = Dataset::generate(DatasetKind::Fldsc, Scale::Small, 2021);
    let dct = dpz::core::compress(
        &ds.data,
        &ds.dims,
        &DpzConfig::strict().with_tve(TveLevel::FiveNines),
    )
    .unwrap();
    let dwt = dpz::core::compress(
        &ds.data,
        &ds.dims,
        &DpzConfig::strict()
            .with_tve(TveLevel::FiveNines)
            .with_transform(Stage1Transform::Dwt { levels: 5 }),
    )
    .unwrap();
    let (a, b) = (dct.stats.k as f64, dwt.stats.k as f64);
    assert!(
        (a / b).max(b / a) < 3.0,
        "k diverged: DCT {} vs DWT {}",
        dct.stats.k,
        dwt.stats.k
    );
}

#[test]
fn sz_auto_predictor_bound_holds_suite_wide() {
    for ds in standard_suite(Scale::Tiny) {
        let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
        let eb = 1e-3 * range;
        let cfg = SzConfig::with_error_bound(eb).with_predictor(Predictor::Auto);
        let bytes = dpz::sz::compress(&ds.data, &ds.dims, &cfg);
        let (recon, _) = dpz::sz::decompress(&bytes).unwrap();
        for (i, (a, b)) in ds.data.iter().zip(&recon).enumerate() {
            let err = (f64::from(*a) - f64::from(*b)).abs();
            assert!(
                err <= eb * (1.0 + 1e-9),
                "{} idx {i}: {err} > {eb}",
                ds.name
            );
        }
    }
}

#[test]
fn sz_auto_helps_on_ordered_positions() {
    // HACC-x is quasi-sorted: block hyperplanes fit its sweeps well, so the
    // hybrid should not lose to pure Lorenzo by more than a whisker and
    // typically wins.
    let ds = Dataset::generate(DatasetKind::HaccX, Scale::Small, 2021);
    let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
    let eb = 1e-4 * range;
    let lorenzo = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(eb));
    let auto = dpz::sz::compress(
        &ds.data,
        &ds.dims,
        &SzConfig::with_error_bound(eb).with_predictor(Predictor::Auto),
    );
    assert!(
        (auto.len() as f64) < lorenzo.len() as f64 * 1.1,
        "hybrid {} vs lorenzo {}",
        auto.len(),
        lorenzo.len()
    );
}

#[test]
fn zfp_fixed_rate_is_exact_across_shapes() {
    for ds in standard_suite(Scale::Tiny) {
        let rate = 4.0;
        let bytes = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedRate(rate));
        let (recon, dims) = dpz::zfp::decompress(&bytes).unwrap();
        assert_eq!(dims, ds.dims, "{}", ds.name);
        assert_eq!(recon.len(), ds.len());
        // Size must be rate-determined (within container framing + the
        // per-block minimum-budget clamp for tiny 1-D blocks).
        let report = QualityReport::evaluate(&ds.data, &recon, bytes.len());
        assert!(
            report.bit_rate < 32.0,
            "{}: fixed-rate stream unexpectedly large ({:.2} bits/val)",
            ds.name,
            report.bit_rate
        );
    }
}

#[test]
fn zfp_rate_beats_precision_at_matched_size_or_close() {
    // Sanity: the two modes sit on the same rate-distortion curve — at a
    // matched compressed size their PSNRs are comparable.
    let ds = Dataset::generate(DatasetKind::Isotropic, Scale::Tiny, 2021);
    let fixed_rate = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedRate(8.0));
    let (r_rate, _) = dpz::zfp::decompress(&fixed_rate).unwrap();
    let q_rate = QualityReport::evaluate(&ds.data, &r_rate, fixed_rate.len());

    // Find the precision whose size is closest to the fixed-rate stream.
    let mut best: Option<(usize, f64)> = None;
    for prec in 4..=24u32 {
        let bytes = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(prec));
        let (recon, _) = dpz::zfp::decompress(&bytes).unwrap();
        let q = QualityReport::evaluate(&ds.data, &recon, bytes.len());
        let gap = (bytes.len() as i64 - fixed_rate.len() as i64).unsigned_abs() as usize;
        if best.is_none() || gap < best.unwrap().0 {
            best = Some((gap, q.psnr));
        }
    }
    let (_, psnr_prec) = best.unwrap();
    assert!(
        (q_rate.psnr - psnr_prec).abs() < 15.0,
        "modes diverged: rate {:.1} dB vs precision {:.1} dB",
        q_rate.psnr,
        psnr_prec
    );
}
