//! Integration across the three compressors: shared data, per-compressor
//! guarantees, and the qualitative rate-distortion relationships the
//! paper's Figure 6 rests on.

use dpz::prelude::*;
use dpz::sz::SzConfig;
use dpz::zfp::ZfpMode;
use dpz_data::metrics::value_range;

#[test]
fn sz_pointwise_bound_on_every_suite_member() {
    for ds in standard_suite(Scale::Tiny) {
        let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
        let eb = 1e-3 * range;
        let bytes = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(eb));
        let (recon, _) = dpz::sz::decompress(&bytes).unwrap();
        for (i, (a, b)) in ds.data.iter().zip(&recon).enumerate() {
            let err = (f64::from(*a) - f64::from(*b)).abs();
            assert!(
                err <= eb * (1.0 + 1e-9),
                "{} idx {i}: {err} > {eb}",
                ds.name
            );
        }
    }
}

#[test]
fn zfp_quality_improves_with_precision_everywhere() {
    for ds in standard_suite(Scale::Tiny) {
        let lo = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(8));
        let hi = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(24));
        let (rl, _) = dpz::zfp::decompress(&lo).unwrap();
        let (rh, _) = dpz::zfp::decompress(&hi).unwrap();
        let pl = QualityReport::evaluate(&ds.data, &rl, lo.len());
        let ph = QualityReport::evaluate(&ds.data, &rh, hi.len());
        assert!(
            ph.psnr > pl.psnr,
            "{}: prec24 {:.1} dB !> prec8 {:.1} dB",
            ds.name,
            ph.psnr,
            pl.psnr
        );
        assert!(
            hi.len() > lo.len(),
            "{}: more precision must cost more bits",
            ds.name
        );
    }
}

#[test]
fn dpz_beats_baselines_on_smooth_climate_field_at_matched_quality() {
    // The paper's headline: at medium-to-high accuracy on smooth 2-D fields,
    // DPZ's ratio exceeds SZ's and ZFP's at comparable PSNR. Use the most
    // DPZ-friendly field (FLDSC) and compare best ratio subject to a PSNR
    // floor.
    let ds = Dataset::generate(DatasetKind::Fldsc, Scale::Small, 2021);
    let floor = 50.0;

    let mut best_dpz = 0.0f64;
    for level in TveLevel::SWEEP {
        let cfg = DpzConfig::loose().with_tve(level);
        if let Ok(out) = dpz::core::compress(&ds.data, &ds.dims, &cfg) {
            if let Ok((recon, _)) = dpz::core::decompress(&out.bytes) {
                let r = QualityReport::evaluate(&ds.data, &recon, out.bytes.len());
                if r.psnr >= floor {
                    best_dpz = best_dpz.max(r.compression_ratio);
                }
            }
        }
    }
    let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
    let mut best_sz = 0.0f64;
    for rel in [1e-2, 1e-3, 1e-4, 1e-5] {
        let bytes = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(rel * range));
        let (recon, _) = dpz::sz::decompress(&bytes).unwrap();
        let r = QualityReport::evaluate(&ds.data, &recon, bytes.len());
        if r.psnr >= floor {
            best_sz = best_sz.max(r.compression_ratio);
        }
    }
    let mut best_zfp = 0.0f64;
    for prec in [8u32, 12, 16, 20, 24] {
        let bytes = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(prec));
        let (recon, _) = dpz::zfp::decompress(&bytes).unwrap();
        let r = QualityReport::evaluate(&ds.data, &recon, bytes.len());
        if r.psnr >= floor {
            best_zfp = best_zfp.max(r.compression_ratio);
        }
    }
    assert!(
        best_dpz > best_zfp,
        "DPZ {best_dpz:.1}x should beat ZFP {best_zfp:.1}x on FLDSC at {floor} dB"
    );
    assert!(
        best_dpz > 5.0,
        "DPZ should reach a solid ratio on its best-case field, got {best_dpz:.1}x"
    );
    // SZ is strong on smooth data; DPZ must at least be in the same league.
    assert!(
        best_dpz > best_sz * 0.5,
        "DPZ {best_dpz:.1}x vs SZ {best_sz:.1}x — more than 2x behind"
    );
}

#[test]
fn all_three_handle_each_dimensionality() {
    for (kind, ndims) in [
        (DatasetKind::HaccX, 1usize),
        (DatasetKind::Cldhgh, 2),
        (DatasetKind::Channel, 3),
    ] {
        let ds = Dataset::generate(kind, Scale::Tiny, 5);
        assert_eq!(ds.dims.len(), ndims);

        let out = dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::loose()).unwrap();
        assert_eq!(dpz::core::decompress(&out.bytes).unwrap().1, ds.dims);

        let range = value_range(&ds.data).max(f64::MIN_POSITIVE);
        let bytes = dpz::sz::compress(
            &ds.data,
            &ds.dims,
            &SzConfig::with_error_bound(1e-3 * range),
        );
        assert_eq!(dpz::sz::decompress(&bytes).unwrap().1, ds.dims);

        let bytes = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(16));
        assert_eq!(dpz::zfp::decompress(&bytes).unwrap().1, ds.dims);
    }
}
