//! Decompression-bomb memory guard.
//!
//! The hardening acceptance bar: decoding a container whose index section
//! packs a >1000:1 zlib zero-run must fail *without* materialising the
//! inflated payload — peak heap growth during the decode stays far under
//! 64 MiB. A peak-tracking global allocator makes that measurable; this
//! file is its own test binary because `#[global_allocator]` is
//! per-binary and the measurement must not share a heap with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_live(new_live: usize) {
    PEAK.fetch_max(new_live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
        note_live(live);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= layout.size() {
            let grow = new_size - layout.size();
            let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
            note_live(live);
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

#[test]
fn deflate_bomb_decodes_to_error_without_inflating() {
    // A valid-looking v2 container whose index section declares 40 raw
    // bytes but whose packed stream holds 96 MiB of zeros with a correct
    // CRC trailer — decode gets past every checksum and is stopped only by
    // the inflate bound derived from the declared size.
    let bomb = dpz_fuzz::deflate_bomb_container(96);

    // Fixture construction itself allocates the 96 MiB plaintext; reset the
    // high-water mark to the current live footprint before measuring.
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    let baseline = PEAK.load(Ordering::Relaxed);

    assert!(dpz::core::decompress(&bomb).is_err());

    let peak_growth = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    assert!(
        peak_growth < 64 << 20,
        "decoding the bomb grew the heap by {peak_growth} bytes (>= 64 MiB): \
         the inflate bound is not holding"
    );
}
