//! Byte-identity pins for the two DPZ container formats.
//!
//! The stage-graph refactor (and any future one) must not change a single
//! emitted byte for a fixed input and config: DPZ1 and DPZC artifacts are
//! archival formats, and deployments diff them across versions. These FNV-1a
//! digests were captured from the pre-refactor pipeline; if an intentional
//! format change ever lands, re-capture them in the same commit that bumps
//! the container version.

use dpz::prelude::*;
use dpz_core::{compress_chunked, compress_progressive, reencode_legacy};

/// FNV-1a, 64-bit — dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic smooth field, identical to the pipeline unit-test fixture.
fn smooth_field(rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            let r = (i / cols) as f32;
            let c = (i % cols) as f32;
            (0.04 * r).sin() * 40.0 + (0.03 * c).cos() * 25.0 + 100.0
        })
        .collect()
}

fn golden_cases() -> Vec<(&'static str, Vec<u8>)> {
    let field = smooth_field(64, 96);
    let line: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
    vec![
        (
            "dpz1-loose-64x96",
            compress(&field, &[64, 96], &DpzConfig::loose())
                .unwrap()
                .bytes,
        ),
        (
            "dpz1-strict-tve6-64x96",
            compress(
                &field,
                &[64, 96],
                &DpzConfig::strict().with_tve(TveLevel::SixNines),
            )
            .unwrap()
            .bytes,
        ),
        (
            "dpz1-loose-1d-4096",
            compress(&line, &[4096], &DpzConfig::loose()).unwrap().bytes,
        ),
        (
            "dpzc-loose-4x-64x96",
            compress_chunked(&field, &[64, 96], &DpzConfig::loose(), 4)
                .unwrap()
                .bytes,
        ),
        (
            "dpzc-strict-3x-ragged-50x96",
            compress_chunked(&smooth_field(50, 96), &[50, 96], &DpzConfig::strict(), 3)
                .unwrap()
                .bytes,
        ),
        (
            "dpzc-v2-reencode-4x-64x96",
            reencode_legacy(
                &compress_chunked(&field, &[64, 96], &DpzConfig::loose(), 4)
                    .unwrap()
                    .bytes,
                2,
            )
            .unwrap(),
        ),
        (
            "dpzp-progressive-4x-64x96",
            compress_progressive(&field, &[64, 96], &DpzConfig::loose(), 4)
                .unwrap()
                .bytes,
        ),
    ]
}

#[test]
fn dpz_artifacts_are_byte_identical_to_golden() {
    // DPZ1 pins date to the container v3 (lossless-backend flag) bump.
    // DPZC pins were re-captured for the v4 seekable-footer bump: the chunk
    // streams are byte-identical to v3-era output, but the directory moved
    // into a tail index footer (offset/len/rows/values/crc per chunk), which
    // is a sanctioned artifact change for the version bump. The v2 reencode
    // pin guards the legacy writer that `reencode_legacy` keeps alive.
    let expected: &[(&str, u64)] = &[
        ("dpz1-loose-64x96", 0x5b223216eee05ee4),
        ("dpz1-strict-tve6-64x96", 0xb610e00893da9f3d),
        ("dpz1-loose-1d-4096", 0xd29b2489a03063a0),
        ("dpzc-loose-4x-64x96", 0x39549a5d0c9c88fe),
        ("dpzc-strict-3x-ragged-50x96", 0x7ff586dfa1d96cbd),
        // Identical to the pre-v4 "dpzc-loose-4x-64x96" pin: reencoding a
        // v4 container down to v2 reproduces the old artifact byte-for-byte.
        ("dpzc-v2-reencode-4x-64x96", 0xfce609df834556fe),
        ("dpzp-progressive-4x-64x96", 0xc8fe461fc394dcd8),
    ];
    let mut failures = Vec::new();
    for ((name, bytes), (ename, ehash)) in golden_cases().iter().zip(expected) {
        assert_eq!(name, ename);
        let h = fnv1a(bytes);
        println!("golden {name}: {h:#018x} ({} bytes)", bytes.len());
        if h != *ehash {
            failures.push(format!(
                "{name}: artifact bytes changed (got {h:#018x}, expected {ehash:#018x})"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn v4_and_legacy_reencodes_decode_to_identical_values() {
    // The seekable footer is framing only: a v4 container, its v2 reencode,
    // and its v1 reencode must reconstruct bit-identical values.
    let field = smooth_field(64, 96);
    let v4 = compress_chunked(&field, &[64, 96], &DpzConfig::loose(), 4)
        .unwrap()
        .bytes;
    let (vals4, dims4, info4) = dpz_core::decompress_chunked_with_info(&v4).unwrap();
    assert_eq!(info4.version, 4);
    assert!(info4.checksummed);
    for legacy_version in [1u8, 2] {
        let legacy = reencode_legacy(&v4, legacy_version).unwrap();
        let (vals, dims, info) = dpz_core::decompress_chunked_with_info(&legacy).unwrap();
        assert_eq!(info.version, legacy_version);
        assert_eq!(dims, dims4);
        assert_eq!(vals, vals4, "v{legacy_version} reencode diverged");
    }
}
