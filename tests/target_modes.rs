//! Property tests for the quality-target control plane: fixed-PSNR and
//! fixed-ratio modes either honor their contract or fail with the typed
//! [`DpzError::TargetUnreachable`], legacy `ErrorBound` targets stay
//! byte-identical to the golden pins, and every ratio search stays inside
//! its oracle-probe budget.

use dpz::prelude::*;
use dpz_core::{ratio_within, MAX_ORACLE_PROBES, PSNR_SLACK_DB};
use dpz_data::metrics;
use proptest::prelude::*;

/// Strategy: a smooth 2-D "scientific-ish" field — sinusoid mixture plus
/// bounded noise — sized to exercise the real sampling/PCA path.
fn field_strategy() -> impl Strategy<Value = (Vec<f32>, Vec<usize>)> {
    (
        24usize..56,
        48usize..96,
        proptest::collection::vec((0.001f64..0.3, 0.001f64..0.3, -10.0f64..10.0), 1..5),
        0.0f64..0.15,
        any::<u64>(),
    )
        .prop_map(|(rows, cols, waves, noise_amp, seed)| {
            let mut s = seed | 1;
            let data = (0..rows * cols)
                .map(|i| {
                    let (r, c) = ((i / cols) as f64, (i % cols) as f64);
                    let mut v = 0.0;
                    for &(fr, fc, amp) in &waves {
                        v += amp * (fr * r).sin() * (fc * c).cos();
                    }
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    (v + noise_amp * noise) as f32
                })
                .collect();
            (data, vec![rows, cols])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Fixed-PSNR mode: a successful compression reconstructs at no more
    // than `PSNR_SLACK_DB` below the requested quality; anything else must
    // be the typed unreachable error, never a silent miss.
    #[test]
    fn fixed_psnr_meets_request_or_fails_typed(
        case in field_strategy(),
        db in 40.0f64..65.0,
    ) {
        let (data, dims) = case;
        let cfg = DpzConfig::loose().with_target(QualityTarget::Psnr(db));
        match dpz::core::compress(&data, &dims, &cfg) {
            Ok(out) => {
                let (recon, _) = dpz::core::decompress(&out.bytes).unwrap();
                let measured = metrics::psnr(&data, &recon);
                prop_assert!(
                    measured >= db - PSNR_SLACK_DB - 1e-6,
                    "requested {db:.1} dB, measured {measured:.2} dB"
                );
            }
            Err(DpzError::TargetUnreachable { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    // Fixed-ratio mode: a successful compression lands inside the
    // tolerance band around the requested ratio; a miss is the typed
    // unreachable error carrying the best achievable ratio.
    #[test]
    fn fixed_ratio_lands_in_band_or_fails_typed(
        case in field_strategy(),
        target in 2.0f64..10.0,
        tol in 0.1f64..0.3,
    ) {
        let (data, dims) = case;
        let cfg = DpzConfig::loose().with_target(QualityTarget::Ratio { target, tol });
        match dpz::core::compress(&data, &dims, &cfg) {
            Ok(out) => {
                let cr = (data.len() * 4) as f64 / out.bytes.len() as f64;
                prop_assert!(
                    ratio_within(cr, target, tol),
                    "requested {target:.2}x ±{tol:.0e}, landed {cr:.2}x"
                );
                // The artifact must still round-trip like any other.
                let (recon, got_dims) = dpz::core::decompress(&out.bytes).unwrap();
                prop_assert_eq!(got_dims, dims);
                prop_assert_eq!(recon.len(), data.len());
            }
            Err(DpzError::TargetUnreachable { requested, achievable }) => {
                prop_assert!((requested - target).abs() < 1e-9);
                prop_assert!(achievable.is_finite() && achievable > 0.0);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// FNV-1a, 64-bit — same digest the golden-artifact suite pins.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `QualityTarget::ErrorBound` is the legacy mode verbatim: routing the
/// bound through `with_target` must reproduce the pinned golden artifact
/// byte for byte.
#[test]
fn error_bound_target_is_byte_identical_to_golden_pin() {
    let field: Vec<f32> = (0..64 * 96)
        .map(|i| {
            let r = (i / 96) as f32;
            let c = (i % 96) as f32;
            (0.04 * r).sin() * 40.0 + (0.03 * c).cos() * 25.0 + 100.0
        })
        .collect();
    let legacy = dpz::core::compress(&field, &[64, 96], &DpzConfig::loose()).unwrap();
    let targeted = dpz::core::compress(
        &field,
        &[64, 96],
        &DpzConfig::loose().with_target(QualityTarget::ErrorBound(1e-3)),
    )
    .unwrap();
    assert_eq!(legacy.bytes, targeted.bytes);
    assert_eq!(
        fnv1a(&targeted.bytes),
        0x5b22_3216_eee0_5ee4,
        "ErrorBound(1e-3) must keep the dpz1-loose-64x96 golden pin"
    );
}

/// Every ratio search stays within the oracle budget: the telemetry
/// recorded per search averages at most [`MAX_ORACLE_PROBES`] calls (each
/// individual search is bounded, so the average is too, regardless of how
/// many searches other tests in this binary interleave).
#[test]
fn ratio_search_stays_inside_oracle_budget() {
    let field: Vec<f32> = (0..48 * 64)
        .map(|i| {
            let r = (i / 64) as f32;
            let c = (i % 64) as f32;
            (0.05 * r).sin() * 30.0 + (0.07 * c).cos() * 20.0
        })
        .collect();
    let reg = dpz_telemetry::global();
    let calls = reg.counter("dpz_target_oracle_calls_total");
    let searches = reg.histogram(
        "dpz_target_search_iters",
        &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0],
    );
    let (calls0, searches0) = (calls.get(), searches.count());

    let cfg = DpzConfig::loose().with_target(QualityTarget::Ratio {
        target: 4.0,
        tol: 0.25,
    });
    // Outcome (hit or typed miss) is covered by the property above; here
    // only the probe accounting matters.
    let _ = dpz::core::compress(&field, &[48, 64], &cfg);

    let new_searches = searches.count() - searches0;
    let new_calls = calls.get() - calls0;
    assert!(new_searches >= 1, "search must record telemetry");
    assert!(
        new_calls as f64 / new_searches as f64 <= f64::from(MAX_ORACLE_PROBES),
        "{new_calls} oracle calls over {new_searches} searches exceeds budget"
    );
}
