//! Integration: container format stability and decoder robustness for all
//! three formats — corrupted or truncated streams must error, never panic.

use dpz::prelude::*;
use dpz::sz::SzConfig;
use dpz::zfp::ZfpMode;

fn dpz_stream() -> Vec<u8> {
    let ds = Dataset::generate(DatasetKind::Freqsh, Scale::Tiny, 3);
    dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::loose())
        .unwrap()
        .bytes
}

#[test]
fn magic_bytes_are_stable() {
    let ds = Dataset::generate(DatasetKind::HaccX, Scale::Tiny, 3);
    assert_eq!(&dpz_stream()[..4], b"DPZ1");
    let sz = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(1e-2));
    assert_eq!(&sz[..4], b"SZR1");
    let zfp = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(12));
    assert_eq!(&zfp[..4], b"ZFR1");
}

#[test]
fn truncations_error_not_panic() {
    let stream = dpz_stream();
    for cut in 0..stream.len().min(64) {
        assert!(dpz::core::decompress(&stream[..cut]).is_err(), "cut {cut}");
    }
    // Also chop mid-payload and at the very end.
    for cut in [stream.len() / 2, stream.len() - 1] {
        assert!(dpz::core::decompress(&stream[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn single_byte_flips_never_panic() {
    let stream = dpz_stream();
    // Flip a spread of positions across the container; decoding may fail or
    // (for payload bits) succeed with altered output — but must not panic.
    let step = (stream.len() / 97).max(1);
    for pos in (0..stream.len()).step_by(step) {
        let mut bad = stream.clone();
        bad[pos] ^= 0x55;
        let _ = dpz::core::decompress(&bad);
    }
}

#[test]
fn cross_format_confusion_is_rejected() {
    let ds = Dataset::generate(DatasetKind::HaccVx, Scale::Tiny, 3);
    let sz = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(1e-2));
    let zfp = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(12));
    assert!(dpz::core::decompress(&sz).is_err());
    assert!(dpz::core::decompress(&zfp).is_err());
    assert!(dpz::sz::decompress(&zfp).is_err());
    assert!(dpz::zfp::decompress(&sz).is_err());
    assert!(dpz::sz::decompress(&dpz_stream()).is_err());
    assert!(dpz::zfp::decompress(&dpz_stream()).is_err());
}

#[test]
fn empty_and_garbage_inputs() {
    for bytes in [&[][..], b"garbage", &[0u8; 1024]] {
        assert!(dpz::core::decompress(bytes).is_err());
        assert!(dpz::sz::decompress(bytes).is_err());
        assert!(dpz::zfp::decompress(bytes).is_err());
    }
}

#[test]
fn container_reports_consistent_metadata() {
    let ds = Dataset::generate(DatasetKind::Cldlow, Scale::Tiny, 9);
    let out = dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::strict()).unwrap();
    let payload = dpz::core::container::deserialize(&out.bytes).unwrap();
    assert_eq!(payload.dims, ds.dims);
    assert_eq!(payload.orig_len, ds.len());
    assert_eq!(payload.m, out.stats.m);
    assert_eq!(payload.n, out.stats.n);
    assert_eq!(payload.k, out.stats.k);
    assert_eq!(payload.p, 1e-4);
    assert!(payload.scores.wide_index);
}
