//! Integration: container format stability and decoder robustness for all
//! three formats — corrupted or truncated streams must error, never panic.

use dpz::prelude::*;
use dpz::sz::SzConfig;
use dpz::zfp::ZfpMode;

fn dpz_stream() -> Vec<u8> {
    let ds = Dataset::generate(DatasetKind::Freqsh, Scale::Tiny, 3);
    dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::loose())
        .unwrap()
        .bytes
}

#[test]
fn magic_bytes_are_stable() {
    let ds = Dataset::generate(DatasetKind::HaccX, Scale::Tiny, 3);
    assert_eq!(&dpz_stream()[..4], b"DPZ1");
    let sz = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(1e-2));
    assert_eq!(&sz[..4], b"SZR1");
    let zfp = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(12));
    assert_eq!(&zfp[..4], b"ZFR1");
}

#[test]
fn truncations_error_not_panic() {
    let stream = dpz_stream();
    for cut in 0..stream.len().min(64) {
        assert!(dpz::core::decompress(&stream[..cut]).is_err(), "cut {cut}");
    }
    // Also chop mid-payload and at the very end.
    for cut in [stream.len() / 2, stream.len() - 1] {
        assert!(dpz::core::decompress(&stream[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn single_byte_flips_never_panic() {
    let stream = dpz_stream();
    // Flip a spread of positions across the container; decoding may fail or
    // (for payload bits) succeed with altered output — but must not panic.
    let step = (stream.len() / 97).max(1);
    for pos in (0..stream.len()).step_by(step) {
        let mut bad = stream.clone();
        bad[pos] ^= 0x55;
        let _ = dpz::core::decompress(&bad);
    }
}

#[test]
fn cross_format_confusion_is_rejected() {
    let ds = Dataset::generate(DatasetKind::HaccVx, Scale::Tiny, 3);
    let sz = dpz::sz::compress(&ds.data, &ds.dims, &SzConfig::with_error_bound(1e-2));
    let zfp = dpz::zfp::compress(&ds.data, &ds.dims, ZfpMode::FixedPrecision(12));
    assert!(dpz::core::decompress(&sz).is_err());
    assert!(dpz::core::decompress(&zfp).is_err());
    assert!(dpz::sz::decompress(&zfp).is_err());
    assert!(dpz::zfp::decompress(&sz).is_err());
    assert!(dpz::sz::decompress(&dpz_stream()).is_err());
    assert!(dpz::zfp::decompress(&dpz_stream()).is_err());
}

#[test]
fn empty_and_garbage_inputs() {
    for bytes in [&[][..], b"garbage", &[0u8; 1024]] {
        assert!(dpz::core::decompress(bytes).is_err());
        assert!(dpz::sz::decompress(bytes).is_err());
        assert!(dpz::zfp::decompress(bytes).is_err());
    }
}

// ---------------------------------------------------------------------------
// Adversarial headers: size fields chosen to overflow the decoder's
// arithmetic or to declare absurd allocations. Each case is a regression
// test for a panic (or unbounded allocation) the decode-hardening pass
// fixed; all must come back as `Err`, never a panic.
// ---------------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[test]
fn overflowing_dims_product_is_rejected() {
    // Regression: `dims.iter().product::<usize>()` used to overflow-panic in
    // debug builds. Eight dims of u64::MAX/2 overflow any usize product.
    let stream = dpz_fuzz::overflow_dims_header();
    assert!(dpz::core::decompress(&stream).is_err());
}

#[test]
fn overflowing_chunk_lengths_are_rejected() {
    // Regression: `lens.iter().sum::<usize>()` in the DPZC directory parser.
    let stream = dpz_fuzz::overflow_chunk_lens();
    assert!(dpz::core::decompress_chunked(&stream).is_err());
    assert!(dpz::core::decompress_chunk(&stream, 0).is_err());
}

#[test]
fn forged_v4_footers_are_rejected_on_every_entry_point() {
    // The index footer is the seekable format's trust anchor: a truncated
    // footer, a forged chunk offset (CRC recomputed so only the structural
    // validation can catch it), and a permuted progressive component order
    // must all come back as errors — from the full decode and from the
    // random-access paths alike.
    for (name, bytes) in [
        ("truncated_footer", dpz_fuzz::truncated_footer()),
        ("forged_footer_offset", dpz_fuzz::forged_footer_offset()),
        (
            "permuted_component_order",
            dpz_fuzz::permuted_component_order(),
        ),
    ] {
        assert!(
            dpz::core::decompress_chunked(&bytes).is_err(),
            "{name}: full decode must reject"
        );
        assert!(
            dpz::core::decompress_chunk(&bytes, 0).is_err(),
            "{name}: chunk retrieval must reject"
        );
        assert!(
            dpz::core::decompress_region(&bytes, &[0..1, 0..1]).is_err(),
            "{name}: region retrieval must reject"
        );
    }
}

#[test]
fn max_ndims_header_is_rejected() {
    // ndims = 255 with a stream far too short to hold 255 dim fields.
    let mut stream = b"DPZ1".to_vec();
    stream.push(2);
    stream.push(255);
    stream.extend_from_slice(&[0u8; 64]);
    assert!(dpz::core::decompress(&stream).is_err());
}

#[test]
fn huge_declared_section_lengths_are_rejected() {
    // A header that parses cleanly but declares a near-usize::MAX packed
    // section length: must fail the bounds check, not allocate or
    // overflow `pos + n` in the cursor.
    let mut stream = b"DPZ1".to_vec();
    stream.push(2); // version
    stream.push(1); // ndims
    push_u64(&mut stream, 16); // dim
    push_u64(&mut stream, 16); // orig_len
    push_u64(&mut stream, 4); // m
    push_u64(&mut stream, 4); // n
    push_u64(&mut stream, 0); // pad
    stream.extend_from_slice(&0.0f64.to_le_bytes()); // norm_min
    stream.extend_from_slice(&1.0f64.to_le_bytes()); // norm_range
    push_u64(&mut stream, 2); // k
    stream.extend_from_slice(&[0, 0]); // transform, dwt levels
    stream.extend_from_slice(&1e-3f64.to_le_bytes()); // p
    stream.extend_from_slice(&[0, 0]); // wide_index, standardized
    push_u64(&mut stream, 48); // model declared raw
    for packed_len in [u64::MAX, u64::MAX - 7, u64::MAX / 2] {
        let mut bad = stream.clone();
        push_u64(&mut bad, packed_len);
        bad.extend_from_slice(&[0u8; 32]);
        assert!(dpz::core::decompress(&bad).is_err(), "len {packed_len}");
    }
}

#[test]
fn sz_implausible_value_count_is_rejected() {
    // SZR1 header declaring ~u64::MAX values backed by a handful of bytes.
    let mut stream = b"SZR1".to_vec();
    stream.push(1); // ndims
    push_u64(&mut stream, u64::MAX / 2); // dim
    stream.extend_from_slice(&[0u8; 64]);
    assert!(dpz::sz::decompress(&stream).is_err());
}

#[test]
fn zfp_bitstream_length_overflow_is_rejected() {
    // ZFR1 header whose bitstream length wraps `pos + bits_len`.
    let mut stream = b"ZFR1".to_vec();
    stream.push(1); // ndims
    push_u64(&mut stream, 64); // dim
    stream.push(0); // mode tag
    push_u64(&mut stream, 16); // mode param
    push_u64(&mut stream, u64::MAX - 8); // bits_len
    stream.extend_from_slice(&[0u8; 16]);
    assert!(dpz::zfp::decompress(&stream).is_err());
}

#[test]
fn deflate_bomb_section_is_rejected() {
    // A v2 container whose index section declares 40 raw bytes but packs a
    // multi-MiB zero run (>1000:1). The bounded inflate must reject it.
    let bomb = dpz_fuzz::deflate_bomb_container(8);
    assert!(dpz::core::decompress(&bomb).is_err());
}

// ---------------------------------------------------------------------------
// v3 containers: the per-section lossless-backend flag and the tANS stream
// are new attack surface. Same contract as everything above: corrupted
// streams error, never panic.
// ---------------------------------------------------------------------------

fn v3_stream() -> Vec<u8> {
    let ds = Dataset::generate(DatasetKind::Freqsh, Scale::Tiny, 3);
    let cfg = DpzConfig::loose().with_lossless(dpz::core::LosslessBackend::Tans);
    dpz::core::compress(&ds.data, &ds.dims, &cfg).unwrap().bytes
}

/// Offset of the first section's backend flag byte: fixed header is
/// magic(4) ver(1) ndims(1) dims(8·ndims) then 68 bytes of scalar fields.
fn first_flag_offset(stream: &[u8]) -> usize {
    assert_eq!(&stream[..4], b"DPZ1");
    assert_eq!(stream[4], 3, "fixture must be a v3 container");
    6 + 8 * stream[5] as usize + 68
}

#[test]
fn v3_truncations_error_not_panic() {
    let stream = v3_stream();
    let step = (stream.len() / 61).max(1);
    for cut in (0..stream.len()).step_by(step) {
        assert!(dpz::core::decompress(&stream[..cut]).is_err(), "cut {cut}");
    }
    assert!(dpz::core::decompress(&stream[..stream.len() - 1]).is_err());
}

#[test]
fn unknown_backend_flag_is_rejected() {
    let stream = v3_stream();
    let off = first_flag_offset(&stream);
    assert!(stream[off] <= 1, "offset {off} is not a backend flag");
    for forged in [2u8, 7, 0xFF] {
        let mut bad = stream.clone();
        bad[off] = forged;
        assert!(dpz::core::decompress(&bad).is_err(), "flag {forged}");
    }
}

#[test]
fn swapped_backend_flag_never_panics() {
    // Flipping the flag routes a section's bytes to the wrong entropy
    // decoder; the bytes are CRC-valid so decode gets all the way into the
    // coder. It must come back as a clean error.
    let stream = v3_stream();
    let off = first_flag_offset(&stream);
    let mut bad = stream.clone();
    bad[off] ^= 1;
    assert!(dpz::core::decompress(&bad).is_err());
}

#[test]
fn tans_bad_state_is_rejected() {
    // Decoder states forged out of the table range: the range check must
    // fire before any table lookup.
    let bad = dpz_fuzz::tans_bad_state();
    assert!(dpz::deflate::tans::decompress_bounded(&bad, 1 << 20).is_err());
}

#[test]
fn tans_oversized_declared_raw_size_is_rejected() {
    // Declared raw length of u32::MAX against a 1 MiB bound: must refuse
    // without allocating the declared size.
    let bad = dpz_fuzz::tans_oversized_raw_len();
    assert!(dpz::deflate::tans::decompress_bounded(&bad, 1 << 20).is_err());
}

#[test]
fn v3_containers_round_trip_with_backend_metadata() {
    let ds = Dataset::generate(DatasetKind::Freqsh, Scale::Tiny, 3);
    let cfg = DpzConfig::loose().with_lossless(dpz::core::LosslessBackend::Tans);
    let out = dpz::core::compress(&ds.data, &ds.dims, &cfg).unwrap();
    let (values, dims, info) = dpz::core::decompress_with_info(&out.bytes).unwrap();
    assert_eq!(info.version, 3);
    assert_eq!(dims, ds.dims);
    // The same payload through the default (v2/DEFLATE) path decodes to the
    // identical values: the backend changes bytes, never numerics.
    let v2 = dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::loose()).unwrap();
    let (v2_values, _) = dpz::core::decompress(&v2.bytes).unwrap();
    assert_eq!(values, v2_values);
}

#[test]
fn v2_containers_verify_and_v1_still_decode() {
    let ds = Dataset::generate(DatasetKind::Freqsh, Scale::Tiny, 3);
    let out = dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::loose()).unwrap();
    assert!(out.stats.checksummed);
    let (_, _, info) = dpz::core::decompress_with_info(&out.bytes).unwrap();
    assert_eq!(info.version, 2);
    assert!(info.checksummed);

    // The v1 writer is kept for back-compat: same payload, no trailers.
    let payload = dpz::core::container::deserialize(&out.bytes).unwrap();
    let (v1, _) = dpz::core::container::serialize_v1(&payload);
    let (via_v1, dims_v1, info_v1) = dpz::core::decompress_with_info(&v1).unwrap();
    let (via_v2, dims_v2) = dpz::core::decompress(&out.bytes).unwrap();
    assert_eq!(info_v1.version, 1);
    assert!(!info_v1.checksummed);
    assert_eq!(dims_v1, dims_v2);
    assert_eq!(via_v1, via_v2);
}

#[test]
fn container_reports_consistent_metadata() {
    let ds = Dataset::generate(DatasetKind::Cldlow, Scale::Tiny, 9);
    let out = dpz::core::compress(&ds.data, &ds.dims, &DpzConfig::strict()).unwrap();
    let payload = dpz::core::container::deserialize(&out.bytes).unwrap();
    assert_eq!(payload.dims, ds.dims);
    assert_eq!(payload.orig_len, ds.len());
    assert_eq!(payload.m, out.stats.m);
    assert_eq!(payload.n, out.stats.n);
    assert_eq!(payload.k, out.stats.k);
    assert_eq!(payload.p, 1e-4);
    assert!(payload.scores.wide_index);
}
