//! Integration: DPZ end-to-end over the whole nine-dataset evaluation suite.

use dpz::prelude::*;
use dpz_core::{compress, decompress};

#[test]
fn every_dataset_round_trips_with_reasonable_quality() {
    for ds in standard_suite(Scale::Tiny) {
        let cfg = DpzConfig::strict().with_tve(TveLevel::SixNines);
        let out = compress(&ds.data, &ds.dims, &cfg).unwrap_or_else(|e| panic!("{}: {e}", ds.name));
        let (recon, dims) = decompress(&out.bytes).unwrap();
        assert_eq!(dims, ds.dims, "{}", ds.name);
        assert_eq!(recon.len(), ds.len(), "{}", ds.name);
        let report = QualityReport::evaluate(&ds.data, &recon, out.bytes.len());
        assert!(
            report.psnr > 30.0,
            "{}: PSNR {:.1} dB too low at six-nine TVE",
            ds.name,
            report.psnr
        );
        assert!(
            report.mean_rel_error < 0.02,
            "{}: θ {}",
            ds.name,
            report.mean_rel_error
        );
    }
}

#[test]
fn compression_is_deterministic() {
    let ds = Dataset::generate(DatasetKind::Cldhgh, Scale::Tiny, 42);
    let cfg = DpzConfig::loose();
    let a = compress(&ds.data, &ds.dims, &cfg).unwrap();
    let b = compress(&ds.data, &ds.dims, &cfg).unwrap();
    assert_eq!(
        a.bytes, b.bytes,
        "same input + config must give identical streams"
    );
}

#[test]
fn loose_vs_strict_tradeoff_holds_suite_wide() {
    // DPZ-s must never be (meaningfully) worse in PSNR than DPZ-l at the
    // same TVE; DPZ-l usually wins on ratio for the compressible fields.
    for ds in standard_suite(Scale::Tiny) {
        let tve = TveLevel::FiveNines;
        let l = compress(&ds.data, &ds.dims, &DpzConfig::loose().with_tve(tve)).unwrap();
        let s = compress(&ds.data, &ds.dims, &DpzConfig::strict().with_tve(tve)).unwrap();
        let (rl, _) = decompress(&l.bytes).unwrap();
        let (rs, _) = decompress(&s.bytes).unwrap();
        let pl = QualityReport::evaluate(&ds.data, &rl, l.bytes.len()).psnr;
        let ps = QualityReport::evaluate(&ds.data, &rs, s.bytes.len()).psnr;
        assert!(
            ps >= pl - 0.5,
            "{}: strict {ps:.1} dB vs loose {pl:.1} dB",
            ds.name
        );
    }
}

#[test]
fn tve_dial_monotone_on_smooth_fields() {
    let ds = Dataset::generate(DatasetKind::Fldsc, Scale::Tiny, 2021);
    let mut last_psnr = 0.0;
    for level in [
        TveLevel::ThreeNines,
        TveLevel::FiveNines,
        TveLevel::SevenNines,
    ] {
        let out = compress(&ds.data, &ds.dims, &DpzConfig::strict().with_tve(level)).unwrap();
        let (recon, _) = decompress(&out.bytes).unwrap();
        let psnr = QualityReport::evaluate(&ds.data, &recon, out.bytes.len()).psnr;
        assert!(
            psnr >= last_psnr - 0.75,
            "PSNR fell from {last_psnr:.1} to {psnr:.1} when tightening TVE"
        );
        last_psnr = psnr;
    }
}

#[test]
fn sampling_agrees_with_plain_path_on_quality() {
    let ds = Dataset::generate(DatasetKind::Phis, Scale::Tiny, 2021);
    let tve = TveLevel::FiveNines;
    let plain = compress(&ds.data, &ds.dims, &DpzConfig::loose().with_tve(tve)).unwrap();
    let sampled = compress(
        &ds.data,
        &ds.dims,
        &DpzConfig::loose().with_tve(tve).with_sampling(true),
    )
    .unwrap();
    let (rp, _) = decompress(&plain.bytes).unwrap();
    let (rs, _) = decompress(&sampled.bytes).unwrap();
    let pp = QualityReport::evaluate(&ds.data, &rp, plain.bytes.len());
    let ps = QualityReport::evaluate(&ds.data, &rs, sampled.bytes.len());
    // The sampled k is an estimate: allow slack but demand the same regime.
    assert!(
        ps.psnr > pp.psnr - 12.0,
        "sampling path quality collapsed: {:.1} vs {:.1}",
        ps.psnr,
        pp.psnr
    );
    assert!(ps.compression_ratio > pp.compression_ratio * 0.4);
}
