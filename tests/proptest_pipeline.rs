//! Property tests over the full DPZ pipeline and its baselines.

use dpz::prelude::*;
use dpz::sz::SzConfig;
use dpz_data::metrics::value_range;
use proptest::prelude::*;

/// Strategy: a "scientific-ish" 1-D field — random smooth mixture of a few
/// sinusoids plus bounded noise, arbitrary length and amplitude.
fn field_strategy() -> impl Strategy<Value = Vec<f32>> {
    (
        64usize..1200,
        proptest::collection::vec(
            (0.001f64..0.5, -10.0f64..10.0, 0.0f64..std::f64::consts::TAU),
            1..5,
        ),
        -1e3f64..1e3,
        0.0f64..0.3,
        any::<u64>(),
    )
        .prop_map(|(len, waves, offset, noise_amp, seed)| {
            let mut s = seed | 1;
            (0..len)
                .map(|i| {
                    let mut v = offset;
                    for &(freq, amp, phase) in &waves {
                        v += amp * (freq * i as f64 + phase).sin();
                    }
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    (v + noise_amp * noise) as f32
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dpz_round_trip_preserves_shape_and_bounds_error(data in field_strategy()) {
        let dims = vec![data.len()];
        let cfg = DpzConfig::strict().with_tve(TveLevel::SevenNines);
        let out = dpz::core::compress(&data, &dims, &cfg).unwrap();
        let (recon, got_dims) = dpz::core::decompress(&out.bytes).unwrap();
        prop_assert_eq!(got_dims, dims);
        prop_assert_eq!(recon.len(), data.len());
        // Range-relative sanity: reconstruction error well inside the range.
        let range = value_range(&data).max(f64::MIN_POSITIVE);
        let max_err = data
            .iter()
            .zip(&recon)
            .map(|(a, b)| (f64::from(*a) - f64::from(*b)).abs())
            .fold(0.0, f64::max);
        prop_assert!(max_err < 0.35 * range, "max_err {} vs range {}", max_err, range);
    }

    #[test]
    fn dpz_container_is_self_describing(data in field_strategy()) {
        let dims = vec![data.len()];
        let out = dpz::core::compress(&data, &dims, &DpzConfig::loose()).unwrap();
        let payload = dpz::core::container::deserialize(&out.bytes).unwrap();
        prop_assert_eq!(payload.orig_len, data.len());
        prop_assert_eq!(payload.m * payload.n, data.len() + payload.pad);
        prop_assert!(payload.k >= 1 && payload.k <= payload.m);
    }

    #[test]
    fn sz_bound_holds_for_arbitrary_fields(data in field_strategy(), rel in 1e-5f64..1e-2) {
        let range = value_range(&data).max(1e-9);
        let eb = rel * range;
        let bytes = dpz::sz::compress(&data, &[data.len()], &SzConfig::with_error_bound(eb));
        let (recon, _) = dpz::sz::decompress(&bytes).unwrap();
        for (a, b) in data.iter().zip(&recon) {
            prop_assert!((f64::from(*a) - f64::from(*b)).abs() <= eb * (1.0 + 1e-9));
        }
    }

    #[test]
    fn zfp_high_precision_is_accurate(data in field_strategy()) {
        let bytes = dpz::zfp::compress(&data, &[data.len()], dpz::zfp::ZfpMode::FixedPrecision(30));
        let (recon, _) = dpz::zfp::decompress(&bytes).unwrap();
        let range = value_range(&data).max(f64::MIN_POSITIVE);
        for (a, b) in data.iter().zip(&recon) {
            let err = (f64::from(*a) - f64::from(*b)).abs();
            prop_assert!(err < 1e-4 * range, "err {} range {}", err, range);
        }
    }

    #[test]
    fn decompress_never_panics_on_mutations(data in field_strategy(), flip in any::<usize>()) {
        let out = dpz::core::compress(&data, &[data.len()], &DpzConfig::loose()).unwrap();
        let mut bytes = out.bytes;
        let n = bytes.len();
        bytes[flip % n] ^= 1 << (flip % 8);
        let _ = dpz::core::decompress(&bytes); // any Result is fine
    }
}

// Fields big enough (128 x 256) to route stage 2 through the randomized
// range-finder, so these properties cover the seeded-sketch path and not
// just the dense solvers. Fewer cases: each one compresses ~32k values.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compressed_artifacts_are_run_deterministic(
        waves in proptest::collection::vec(
            (0.001f64..0.3, 0.001f64..0.3, -10.0f64..10.0),
            1..5,
        ),
        noise_amp in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let (rows, cols) = (128usize, 256usize);
        let mut s = seed | 1;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let (r, c) = ((i / cols) as f64, (i % cols) as f64);
                let mut v = 0.0;
                for &(fr, fc, amp) in &waves {
                    v += amp * (fr * r).sin() * (fc * c).cos();
                }
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                (v + noise_amp * noise) as f32
            })
            .collect();
        let dims = vec![rows, cols];
        // The randomized eigensolve uses a fixed per-fit probe seed, so the
        // whole artifact must be bitwise reproducible run over run.
        for cfg in [DpzConfig::loose(), DpzConfig::strict().with_tve(TveLevel::FiveNines)] {
            let a = dpz::core::compress(&data, &dims, &cfg).unwrap();
            let b = dpz::core::compress(&data, &dims, &cfg).unwrap();
            prop_assert_eq!(&a.bytes, &b.bytes);
        }
    }
}
