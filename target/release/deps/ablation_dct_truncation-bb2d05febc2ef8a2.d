/root/repo/target/release/deps/ablation_dct_truncation-bb2d05febc2ef8a2.d: crates/bench/src/bin/ablation_dct_truncation.rs

/root/repo/target/release/deps/ablation_dct_truncation-bb2d05febc2ef8a2: crates/bench/src/bin/ablation_dct_truncation.rs

crates/bench/src/bin/ablation_dct_truncation.rs:
