/root/repo/target/release/deps/table2_kneepoint-48834d1da6fa289b.d: crates/bench/src/bin/table2_kneepoint.rs

/root/repo/target/release/deps/table2_kneepoint-48834d1da6fa289b: crates/bench/src/bin/table2_kneepoint.rs

crates/bench/src/bin/table2_kneepoint.rs:
