/root/repo/target/release/deps/dpz_sz-582e1ed80e27e150.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/release/deps/libdpz_sz-582e1ed80e27e150.rlib: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/release/deps/libdpz_sz-582e1ed80e27e150.rmeta: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
