/root/repo/target/release/deps/ablation_block_shape-d8cb1052e567361e.d: crates/bench/src/bin/ablation_block_shape.rs

/root/repo/target/release/deps/ablation_block_shape-d8cb1052e567361e: crates/bench/src/bin/ablation_block_shape.rs

crates/bench/src/bin/ablation_block_shape.rs:
