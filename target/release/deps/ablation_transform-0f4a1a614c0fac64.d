/root/repo/target/release/deps/ablation_transform-0f4a1a614c0fac64.d: crates/bench/src/bin/ablation_transform.rs

/root/repo/target/release/deps/ablation_transform-0f4a1a614c0fac64: crates/bench/src/bin/ablation_transform.rs

crates/bench/src/bin/ablation_transform.rs:
