/root/repo/target/release/deps/table3_cr_breakdown-230c8c5fa56f7051.d: crates/bench/src/bin/table3_cr_breakdown.rs

/root/repo/target/release/deps/table3_cr_breakdown-230c8c5fa56f7051: crates/bench/src/bin/table3_cr_breakdown.rs

crates/bench/src/bin/table3_cr_breakdown.rs:
