/root/repo/target/release/deps/dpz_sz-be265e0acc9fa6eb.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/release/deps/libdpz_sz-be265e0acc9fa6eb.rlib: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/release/deps/libdpz_sz-be265e0acc9fa6eb.rmeta: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
