/root/repo/target/release/deps/ablation_dct_truncation-86db93af7dbcc16c.d: crates/bench/src/bin/ablation_dct_truncation.rs

/root/repo/target/release/deps/ablation_dct_truncation-86db93af7dbcc16c: crates/bench/src/bin/ablation_dct_truncation.rs

crates/bench/src/bin/ablation_dct_truncation.rs:
