/root/repo/target/release/deps/dpz_bench-fe1730fe9af81131.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libdpz_bench-fe1730fe9af81131.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libdpz_bench-fe1730fe9af81131.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
