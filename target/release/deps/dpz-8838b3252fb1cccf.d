/root/repo/target/release/deps/dpz-8838b3252fb1cccf.d: src/lib.rs

/root/repo/target/release/deps/libdpz-8838b3252fb1cccf.rlib: src/lib.rs

/root/repo/target/release/deps/libdpz-8838b3252fb1cccf.rmeta: src/lib.rs

src/lib.rs:
