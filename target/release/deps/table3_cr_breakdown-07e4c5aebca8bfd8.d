/root/repo/target/release/deps/table3_cr_breakdown-07e4c5aebca8bfd8.d: crates/bench/src/bin/table3_cr_breakdown.rs

/root/repo/target/release/deps/table3_cr_breakdown-07e4c5aebca8bfd8: crates/bench/src/bin/table3_cr_breakdown.rs

crates/bench/src/bin/table3_cr_breakdown.rs:
