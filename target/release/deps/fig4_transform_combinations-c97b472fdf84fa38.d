/root/repo/target/release/deps/fig4_transform_combinations-c97b472fdf84fa38.d: crates/bench/src/bin/fig4_transform_combinations.rs

/root/repo/target/release/deps/fig4_transform_combinations-c97b472fdf84fa38: crates/bench/src/bin/fig4_transform_combinations.rs

crates/bench/src/bin/fig4_transform_combinations.rs:
