/root/repo/target/release/deps/ablation_standardize-e1d9f5e15b46b983.d: crates/bench/src/bin/ablation_standardize.rs

/root/repo/target/release/deps/ablation_standardize-e1d9f5e15b46b983: crates/bench/src/bin/ablation_standardize.rs

crates/bench/src/bin/ablation_standardize.rs:
