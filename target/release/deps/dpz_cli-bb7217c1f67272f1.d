/root/repo/target/release/deps/dpz_cli-bb7217c1f67272f1.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libdpz_cli-bb7217c1f67272f1.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libdpz_cli-bb7217c1f67272f1.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
