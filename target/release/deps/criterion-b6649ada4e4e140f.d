/root/repo/target/release/deps/criterion-b6649ada4e4e140f.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b6649ada4e4e140f.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b6649ada4e4e140f.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
