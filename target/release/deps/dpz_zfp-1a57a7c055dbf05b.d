/root/repo/target/release/deps/dpz_zfp-1a57a7c055dbf05b.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/release/deps/libdpz_zfp-1a57a7c055dbf05b.rlib: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/release/deps/libdpz_zfp-1a57a7c055dbf05b.rmeta: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
