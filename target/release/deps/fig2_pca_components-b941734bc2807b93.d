/root/repo/target/release/deps/fig2_pca_components-b941734bc2807b93.d: crates/bench/src/bin/fig2_pca_components.rs

/root/repo/target/release/deps/fig2_pca_components-b941734bc2807b93: crates/bench/src/bin/fig2_pca_components.rs

crates/bench/src/bin/fig2_pca_components.rs:
