/root/repo/target/release/deps/fig1_dct_distribution-02e9d3e27f8a9fa2.d: crates/bench/src/bin/fig1_dct_distribution.rs

/root/repo/target/release/deps/fig1_dct_distribution-02e9d3e27f8a9fa2: crates/bench/src/bin/fig1_dct_distribution.rs

crates/bench/src/bin/fig1_dct_distribution.rs:
