/root/repo/target/release/deps/dpz_bench-d8946d31f0bd7f65.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libdpz_bench-d8946d31f0bd7f65.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/release/deps/libdpz_bench-d8946d31f0bd7f65.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
