/root/repo/target/release/deps/fig7_visualization-270cd51912cc5359.d: crates/bench/src/bin/fig7_visualization.rs

/root/repo/target/release/deps/fig7_visualization-270cd51912cc5359: crates/bench/src/bin/fig7_visualization.rs

crates/bench/src/bin/fig7_visualization.rs:
