/root/repo/target/release/deps/dpz_deflate-3e8baaffaed3bd4f.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

/root/repo/target/release/deps/libdpz_deflate-3e8baaffaed3bd4f.rlib: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

/root/repo/target/release/deps/libdpz_deflate-3e8baaffaed3bd4f.rmeta: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/deflate.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/inflate.rs:
crates/deflate/src/lz77.rs:
crates/deflate/src/zlib.rs:
