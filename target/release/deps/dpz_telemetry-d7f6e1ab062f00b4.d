/root/repo/target/release/deps/dpz_telemetry-d7f6e1ab062f00b4.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libdpz_telemetry-d7f6e1ab062f00b4.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libdpz_telemetry-d7f6e1ab062f00b4.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
