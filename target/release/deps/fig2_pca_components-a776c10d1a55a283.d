/root/repo/target/release/deps/fig2_pca_components-a776c10d1a55a283.d: crates/bench/src/bin/fig2_pca_components.rs

/root/repo/target/release/deps/fig2_pca_components-a776c10d1a55a283: crates/bench/src/bin/fig2_pca_components.rs

crates/bench/src/bin/fig2_pca_components.rs:
