/root/repo/target/release/deps/table4_psnr_loss-80a0cfe90b321875.d: crates/bench/src/bin/table4_psnr_loss.rs

/root/repo/target/release/deps/table4_psnr_loss-80a0cfe90b321875: crates/bench/src/bin/table4_psnr_loss.rs

crates/bench/src/bin/table4_psnr_loss.rs:
