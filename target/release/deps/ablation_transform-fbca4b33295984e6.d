/root/repo/target/release/deps/ablation_transform-fbca4b33295984e6.d: crates/bench/src/bin/ablation_transform.rs

/root/repo/target/release/deps/ablation_transform-fbca4b33295984e6: crates/bench/src/bin/ablation_transform.rs

crates/bench/src/bin/ablation_transform.rs:
