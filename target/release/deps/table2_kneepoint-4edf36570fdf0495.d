/root/repo/target/release/deps/table2_kneepoint-4edf36570fdf0495.d: crates/bench/src/bin/table2_kneepoint.rs

/root/repo/target/release/deps/table2_kneepoint-4edf36570fdf0495: crates/bench/src/bin/table2_kneepoint.rs

crates/bench/src/bin/table2_kneepoint.rs:
