/root/repo/target/release/deps/dpz_linalg-cd88f01a4569f63e.d: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

/root/repo/target/release/deps/libdpz_linalg-cd88f01a4569f63e.rlib: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

/root/repo/target/release/deps/libdpz_linalg-cd88f01a4569f63e.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dct.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/fft.rs:
crates/linalg/src/fit.rs:
crates/linalg/src/jacobi.rs:
crates/linalg/src/knee.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/wavelet.rs:
