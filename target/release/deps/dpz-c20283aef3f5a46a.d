/root/repo/target/release/deps/dpz-c20283aef3f5a46a.d: src/lib.rs

/root/repo/target/release/deps/libdpz-c20283aef3f5a46a.rlib: src/lib.rs

/root/repo/target/release/deps/libdpz-c20283aef3f5a46a.rmeta: src/lib.rs

src/lib.rs:
