/root/repo/target/release/deps/fig9_time_breakdown-beded45f2a18996d.d: crates/bench/src/bin/fig9_time_breakdown.rs

/root/repo/target/release/deps/fig9_time_breakdown-beded45f2a18996d: crates/bench/src/bin/fig9_time_breakdown.rs

crates/bench/src/bin/fig9_time_breakdown.rs:
