/root/repo/target/release/deps/fig3_information_preservation-e8e6850e8816b1c9.d: crates/bench/src/bin/fig3_information_preservation.rs

/root/repo/target/release/deps/fig3_information_preservation-e8e6850e8816b1c9: crates/bench/src/bin/fig3_information_preservation.rs

crates/bench/src/bin/fig3_information_preservation.rs:
