/root/repo/target/release/deps/fig9_time_breakdown-23f4b9fd8e66a256.d: crates/bench/src/bin/fig9_time_breakdown.rs

/root/repo/target/release/deps/fig9_time_breakdown-23f4b9fd8e66a256: crates/bench/src/bin/fig9_time_breakdown.rs

crates/bench/src/bin/fig9_time_breakdown.rs:
