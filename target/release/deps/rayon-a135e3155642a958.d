/root/repo/target/release/deps/rayon-a135e3155642a958.d: crates/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-a135e3155642a958.rlib: crates/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-a135e3155642a958.rmeta: crates/rayon/src/lib.rs

crates/rayon/src/lib.rs:
