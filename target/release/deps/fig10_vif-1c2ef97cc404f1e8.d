/root/repo/target/release/deps/fig10_vif-1c2ef97cc404f1e8.d: crates/bench/src/bin/fig10_vif.rs

/root/repo/target/release/deps/fig10_vif-1c2ef97cc404f1e8: crates/bench/src/bin/fig10_vif.rs

crates/bench/src/bin/fig10_vif.rs:
