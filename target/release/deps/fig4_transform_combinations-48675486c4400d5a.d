/root/repo/target/release/deps/fig4_transform_combinations-48675486c4400d5a.d: crates/bench/src/bin/fig4_transform_combinations.rs

/root/repo/target/release/deps/fig4_transform_combinations-48675486c4400d5a: crates/bench/src/bin/fig4_transform_combinations.rs

crates/bench/src/bin/fig4_transform_combinations.rs:
