/root/repo/target/release/deps/fig8_throughput-a8fc66dfdb4f5f06.d: crates/bench/src/bin/fig8_throughput.rs

/root/repo/target/release/deps/fig8_throughput-a8fc66dfdb4f5f06: crates/bench/src/bin/fig8_throughput.rs

crates/bench/src/bin/fig8_throughput.rs:
