/root/repo/target/release/deps/dpz-d8af755dc648fa6f.d: crates/cli/src/bin/dpz.rs

/root/repo/target/release/deps/dpz-d8af755dc648fa6f: crates/cli/src/bin/dpz.rs

crates/cli/src/bin/dpz.rs:
