/root/repo/target/release/deps/table1_datasets-af801c5dafa690ef.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/release/deps/table1_datasets-af801c5dafa690ef: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
