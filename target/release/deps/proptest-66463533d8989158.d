/root/repo/target/release/deps/proptest-66463533d8989158.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-66463533d8989158.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-66463533d8989158.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
