/root/repo/target/release/deps/fig1_dct_distribution-0110fb668e4decaa.d: crates/bench/src/bin/fig1_dct_distribution.rs

/root/repo/target/release/deps/fig1_dct_distribution-0110fb668e4decaa: crates/bench/src/bin/fig1_dct_distribution.rs

crates/bench/src/bin/fig1_dct_distribution.rs:
