/root/repo/target/release/deps/dpz_zfp-07800c96e30f4277.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/release/deps/libdpz_zfp-07800c96e30f4277.rlib: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/release/deps/libdpz_zfp-07800c96e30f4277.rmeta: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
