/root/repo/target/release/deps/table5_sampling_accuracy-b5e1f907f9571ea1.d: crates/bench/src/bin/table5_sampling_accuracy.rs

/root/repo/target/release/deps/table5_sampling_accuracy-b5e1f907f9571ea1: crates/bench/src/bin/table5_sampling_accuracy.rs

crates/bench/src/bin/table5_sampling_accuracy.rs:
