/root/repo/target/release/deps/table4_psnr_loss-3e88d0d4adb10a04.d: crates/bench/src/bin/table4_psnr_loss.rs

/root/repo/target/release/deps/table4_psnr_loss-3e88d0d4adb10a04: crates/bench/src/bin/table4_psnr_loss.rs

crates/bench/src/bin/table4_psnr_loss.rs:
