/root/repo/target/release/deps/dpz-25582b2ebc67dcf0.d: crates/cli/src/bin/dpz.rs

/root/repo/target/release/deps/dpz-25582b2ebc67dcf0: crates/cli/src/bin/dpz.rs

crates/cli/src/bin/dpz.rs:
