/root/repo/target/release/deps/fig6_rate_distortion-dd6ec34558debfc3.d: crates/bench/src/bin/fig6_rate_distortion.rs

/root/repo/target/release/deps/fig6_rate_distortion-dd6ec34558debfc3: crates/bench/src/bin/fig6_rate_distortion.rs

crates/bench/src/bin/fig6_rate_distortion.rs:
