/root/repo/target/release/deps/ablation_standardize-29d800ccc3365620.d: crates/bench/src/bin/ablation_standardize.rs

/root/repo/target/release/deps/ablation_standardize-29d800ccc3365620: crates/bench/src/bin/ablation_standardize.rs

crates/bench/src/bin/ablation_standardize.rs:
