/root/repo/target/release/deps/fig8_throughput-116f6c839e4c5c6d.d: crates/bench/src/bin/fig8_throughput.rs

/root/repo/target/release/deps/fig8_throughput-116f6c839e4c5c6d: crates/bench/src/bin/fig8_throughput.rs

crates/bench/src/bin/fig8_throughput.rs:
