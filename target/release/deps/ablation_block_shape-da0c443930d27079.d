/root/repo/target/release/deps/ablation_block_shape-da0c443930d27079.d: crates/bench/src/bin/ablation_block_shape.rs

/root/repo/target/release/deps/ablation_block_shape-da0c443930d27079: crates/bench/src/bin/ablation_block_shape.rs

crates/bench/src/bin/ablation_block_shape.rs:
