/root/repo/target/release/deps/dpz_core-8882edaebfd6f762.d: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

/root/repo/target/release/deps/libdpz_core-8882edaebfd6f762.rlib: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

/root/repo/target/release/deps/libdpz_core-8882edaebfd6f762.rmeta: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/chunked.rs:
crates/core/src/combos.rs:
crates/core/src/config.rs:
crates/core/src/container.rs:
crates/core/src/decompose.rs:
crates/core/src/kpca.rs:
crates/core/src/pipeline.rs:
crates/core/src/quantize.rs:
crates/core/src/sampling.rs:
