/root/repo/target/release/deps/fig10_vif-6cb50f5f457bcff5.d: crates/bench/src/bin/fig10_vif.rs

/root/repo/target/release/deps/fig10_vif-6cb50f5f457bcff5: crates/bench/src/bin/fig10_vif.rs

crates/bench/src/bin/fig10_vif.rs:
