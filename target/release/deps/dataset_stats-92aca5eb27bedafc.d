/root/repo/target/release/deps/dataset_stats-92aca5eb27bedafc.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/release/deps/dataset_stats-92aca5eb27bedafc: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:
