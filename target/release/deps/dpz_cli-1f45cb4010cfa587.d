/root/repo/target/release/deps/dpz_cli-1f45cb4010cfa587.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libdpz_cli-1f45cb4010cfa587.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libdpz_cli-1f45cb4010cfa587.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
