/root/repo/target/release/deps/dpz_data-aa74d3b6234a56e3.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libdpz_data-aa74d3b6234a56e3.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

/root/repo/target/release/deps/libdpz_data-aa74d3b6234a56e3.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/io.rs:
crates/data/src/metrics.rs:
crates/data/src/pgm.rs:
crates/data/src/rng.rs:
crates/data/src/stats.rs:
crates/data/src/synthetic.rs:
