/root/repo/target/release/deps/fig6_rate_distortion-2789c4ea4f9f61fb.d: crates/bench/src/bin/fig6_rate_distortion.rs

/root/repo/target/release/deps/fig6_rate_distortion-2789c4ea4f9f61fb: crates/bench/src/bin/fig6_rate_distortion.rs

crates/bench/src/bin/fig6_rate_distortion.rs:
