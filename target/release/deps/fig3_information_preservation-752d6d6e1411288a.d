/root/repo/target/release/deps/fig3_information_preservation-752d6d6e1411288a.d: crates/bench/src/bin/fig3_information_preservation.rs

/root/repo/target/release/deps/fig3_information_preservation-752d6d6e1411288a: crates/bench/src/bin/fig3_information_preservation.rs

crates/bench/src/bin/fig3_information_preservation.rs:
