/root/repo/target/release/deps/table1_datasets-b787e5dc1540d18a.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/release/deps/table1_datasets-b787e5dc1540d18a: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
