/root/repo/target/release/deps/fig7_visualization-3ccad4678b9d75d0.d: crates/bench/src/bin/fig7_visualization.rs

/root/repo/target/release/deps/fig7_visualization-3ccad4678b9d75d0: crates/bench/src/bin/fig7_visualization.rs

crates/bench/src/bin/fig7_visualization.rs:
