/root/repo/target/release/deps/dataset_stats-94f441ce5a4df7f1.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/release/deps/dataset_stats-94f441ce5a4df7f1: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:
