/root/repo/target/release/deps/table5_sampling_accuracy-b79a826d59874507.d: crates/bench/src/bin/table5_sampling_accuracy.rs

/root/repo/target/release/deps/table5_sampling_accuracy-b79a826d59874507: crates/bench/src/bin/table5_sampling_accuracy.rs

crates/bench/src/bin/table5_sampling_accuracy.rs:
