/root/repo/target/release/librayon.rlib: /root/repo/crates/rayon/src/lib.rs
