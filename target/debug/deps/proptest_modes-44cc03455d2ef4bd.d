/root/repo/target/debug/deps/proptest_modes-44cc03455d2ef4bd.d: crates/zfp/tests/proptest_modes.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_modes-44cc03455d2ef4bd.rmeta: crates/zfp/tests/proptest_modes.rs Cargo.toml

crates/zfp/tests/proptest_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
