/root/repo/target/debug/deps/roundtrip_suite-b3529beccda01abc.d: tests/roundtrip_suite.rs

/root/repo/target/debug/deps/roundtrip_suite-b3529beccda01abc: tests/roundtrip_suite.rs

tests/roundtrip_suite.rs:
