/root/repo/target/debug/deps/fig6_rate_distortion-b89b09ddca63d909.d: crates/bench/src/bin/fig6_rate_distortion.rs

/root/repo/target/debug/deps/fig6_rate_distortion-b89b09ddca63d909: crates/bench/src/bin/fig6_rate_distortion.rs

crates/bench/src/bin/fig6_rate_distortion.rs:
