/root/repo/target/debug/deps/table2_kneepoint-bcb4be1ee4451970.d: crates/bench/src/bin/table2_kneepoint.rs

/root/repo/target/debug/deps/table2_kneepoint-bcb4be1ee4451970: crates/bench/src/bin/table2_kneepoint.rs

crates/bench/src/bin/table2_kneepoint.rs:
