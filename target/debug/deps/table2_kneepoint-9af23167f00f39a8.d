/root/repo/target/debug/deps/table2_kneepoint-9af23167f00f39a8.d: crates/bench/src/bin/table2_kneepoint.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_kneepoint-9af23167f00f39a8.rmeta: crates/bench/src/bin/table2_kneepoint.rs Cargo.toml

crates/bench/src/bin/table2_kneepoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
