/root/repo/target/debug/deps/table3_cr_breakdown-12d7ee213b6a0b9a.d: crates/bench/src/bin/table3_cr_breakdown.rs

/root/repo/target/debug/deps/table3_cr_breakdown-12d7ee213b6a0b9a: crates/bench/src/bin/table3_cr_breakdown.rs

crates/bench/src/bin/table3_cr_breakdown.rs:
