/root/repo/target/debug/deps/ablation_standardize-02273ffa4799843a.d: crates/bench/src/bin/ablation_standardize.rs Cargo.toml

/root/repo/target/debug/deps/libablation_standardize-02273ffa4799843a.rmeta: crates/bench/src/bin/ablation_standardize.rs Cargo.toml

crates/bench/src/bin/ablation_standardize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
