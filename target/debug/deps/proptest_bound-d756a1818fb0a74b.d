/root/repo/target/debug/deps/proptest_bound-d756a1818fb0a74b.d: crates/sz/tests/proptest_bound.rs

/root/repo/target/debug/deps/proptest_bound-d756a1818fb0a74b: crates/sz/tests/proptest_bound.rs

crates/sz/tests/proptest_bound.rs:
