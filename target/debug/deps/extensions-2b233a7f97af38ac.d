/root/repo/target/debug/deps/extensions-2b233a7f97af38ac.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-2b233a7f97af38ac: tests/extensions.rs

tests/extensions.rs:
