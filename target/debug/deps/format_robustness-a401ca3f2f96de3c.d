/root/repo/target/debug/deps/format_robustness-a401ca3f2f96de3c.d: tests/format_robustness.rs

/root/repo/target/debug/deps/format_robustness-a401ca3f2f96de3c: tests/format_robustness.rs

tests/format_robustness.rs:
