/root/repo/target/debug/deps/proptest_roundtrip-d7caf6ba959e7eaf.d: crates/deflate/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-d7caf6ba959e7eaf.rmeta: crates/deflate/tests/proptest_roundtrip.rs Cargo.toml

crates/deflate/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
