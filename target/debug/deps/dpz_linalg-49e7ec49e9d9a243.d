/root/repo/target/debug/deps/dpz_linalg-49e7ec49e9d9a243.d: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

/root/repo/target/debug/deps/libdpz_linalg-49e7ec49e9d9a243.rlib: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

/root/repo/target/debug/deps/libdpz_linalg-49e7ec49e9d9a243.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dct.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/fft.rs:
crates/linalg/src/fit.rs:
crates/linalg/src/jacobi.rs:
crates/linalg/src/knee.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/wavelet.rs:
