/root/repo/target/debug/deps/bench_dct-4ea2e971e10bc8c2.d: crates/bench/benches/bench_dct.rs Cargo.toml

/root/repo/target/debug/deps/libbench_dct-4ea2e971e10bc8c2.rmeta: crates/bench/benches/bench_dct.rs Cargo.toml

crates/bench/benches/bench_dct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
