/root/repo/target/debug/deps/fig3_information_preservation-f6cf77e076227699.d: crates/bench/src/bin/fig3_information_preservation.rs

/root/repo/target/debug/deps/fig3_information_preservation-f6cf77e076227699: crates/bench/src/bin/fig3_information_preservation.rs

crates/bench/src/bin/fig3_information_preservation.rs:
