/root/repo/target/debug/deps/dpz-63a51fc342da17f5.d: src/lib.rs

/root/repo/target/debug/deps/dpz-63a51fc342da17f5: src/lib.rs

src/lib.rs:
