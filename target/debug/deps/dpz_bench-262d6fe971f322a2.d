/root/repo/target/debug/deps/dpz_bench-262d6fe971f322a2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_bench-262d6fe971f322a2.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
