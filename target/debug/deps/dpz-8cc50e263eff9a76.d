/root/repo/target/debug/deps/dpz-8cc50e263eff9a76.d: src/lib.rs

/root/repo/target/debug/deps/dpz-8cc50e263eff9a76: src/lib.rs

src/lib.rs:
