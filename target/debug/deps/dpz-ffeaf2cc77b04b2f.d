/root/repo/target/debug/deps/dpz-ffeaf2cc77b04b2f.d: crates/cli/src/bin/dpz.rs Cargo.toml

/root/repo/target/debug/deps/libdpz-ffeaf2cc77b04b2f.rmeta: crates/cli/src/bin/dpz.rs Cargo.toml

crates/cli/src/bin/dpz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
