/root/repo/target/debug/deps/dpz_sz-b977d0973bcbd9a3.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_sz-b977d0973bcbd9a3.rmeta: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs Cargo.toml

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
