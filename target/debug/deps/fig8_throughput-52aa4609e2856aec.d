/root/repo/target/debug/deps/fig8_throughput-52aa4609e2856aec.d: crates/bench/src/bin/fig8_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_throughput-52aa4609e2856aec.rmeta: crates/bench/src/bin/fig8_throughput.rs Cargo.toml

crates/bench/src/bin/fig8_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
