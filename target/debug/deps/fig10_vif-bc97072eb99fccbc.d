/root/repo/target/debug/deps/fig10_vif-bc97072eb99fccbc.d: crates/bench/src/bin/fig10_vif.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_vif-bc97072eb99fccbc.rmeta: crates/bench/src/bin/fig10_vif.rs Cargo.toml

crates/bench/src/bin/fig10_vif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
