/root/repo/target/debug/deps/proptest_numerics-e9f585d8fdc266e9.d: crates/linalg/tests/proptest_numerics.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_numerics-e9f585d8fdc266e9.rmeta: crates/linalg/tests/proptest_numerics.rs Cargo.toml

crates/linalg/tests/proptest_numerics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
