/root/repo/target/debug/deps/proptest_roundtrip-f4ce85278d7ffacb.d: crates/deflate/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-f4ce85278d7ffacb: crates/deflate/tests/proptest_roundtrip.rs

crates/deflate/tests/proptest_roundtrip.rs:
