/root/repo/target/debug/deps/fig1_dct_distribution-4b9f103ca54848a1.d: crates/bench/src/bin/fig1_dct_distribution.rs

/root/repo/target/debug/deps/fig1_dct_distribution-4b9f103ca54848a1: crates/bench/src/bin/fig1_dct_distribution.rs

crates/bench/src/bin/fig1_dct_distribution.rs:
