/root/repo/target/debug/deps/proptest_bound-0c7a127e20b76589.d: crates/sz/tests/proptest_bound.rs

/root/repo/target/debug/deps/proptest_bound-0c7a127e20b76589: crates/sz/tests/proptest_bound.rs

crates/sz/tests/proptest_bound.rs:
