/root/repo/target/debug/deps/cross_compressor-269a9ad024390358.d: tests/cross_compressor.rs

/root/repo/target/debug/deps/cross_compressor-269a9ad024390358: tests/cross_compressor.rs

tests/cross_compressor.rs:
