/root/repo/target/debug/deps/table1_datasets-bc6b8261a57a9aea.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/debug/deps/table1_datasets-bc6b8261a57a9aea: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
