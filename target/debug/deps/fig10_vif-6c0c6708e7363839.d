/root/repo/target/debug/deps/fig10_vif-6c0c6708e7363839.d: crates/bench/src/bin/fig10_vif.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_vif-6c0c6708e7363839.rmeta: crates/bench/src/bin/fig10_vif.rs Cargo.toml

crates/bench/src/bin/fig10_vif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
