/root/repo/target/debug/deps/ablation_standardize-7d4d4e6a7bd18247.d: crates/bench/src/bin/ablation_standardize.rs

/root/repo/target/debug/deps/ablation_standardize-7d4d4e6a7bd18247: crates/bench/src/bin/ablation_standardize.rs

crates/bench/src/bin/ablation_standardize.rs:
