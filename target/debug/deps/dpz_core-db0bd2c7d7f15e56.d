/root/repo/target/debug/deps/dpz_core-db0bd2c7d7f15e56.d: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libdpz_core-db0bd2c7d7f15e56.rlib: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libdpz_core-db0bd2c7d7f15e56.rmeta: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/chunked.rs:
crates/core/src/combos.rs:
crates/core/src/config.rs:
crates/core/src/container.rs:
crates/core/src/decompose.rs:
crates/core/src/kpca.rs:
crates/core/src/pipeline.rs:
crates/core/src/quantize.rs:
crates/core/src/sampling.rs:
