/root/repo/target/debug/deps/format_robustness-baf9f884ca8004d8.d: tests/format_robustness.rs

/root/repo/target/debug/deps/format_robustness-baf9f884ca8004d8: tests/format_robustness.rs

tests/format_robustness.rs:
