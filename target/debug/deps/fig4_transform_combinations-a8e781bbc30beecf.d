/root/repo/target/debug/deps/fig4_transform_combinations-a8e781bbc30beecf.d: crates/bench/src/bin/fig4_transform_combinations.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_transform_combinations-a8e781bbc30beecf.rmeta: crates/bench/src/bin/fig4_transform_combinations.rs Cargo.toml

crates/bench/src/bin/fig4_transform_combinations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
