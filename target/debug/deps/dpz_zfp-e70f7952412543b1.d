/root/repo/target/debug/deps/dpz_zfp-e70f7952412543b1.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/debug/deps/libdpz_zfp-e70f7952412543b1.rlib: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/debug/deps/libdpz_zfp-e70f7952412543b1.rmeta: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
