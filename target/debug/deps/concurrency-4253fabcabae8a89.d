/root/repo/target/debug/deps/concurrency-4253fabcabae8a89.d: crates/telemetry/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-4253fabcabae8a89: crates/telemetry/tests/concurrency.rs

crates/telemetry/tests/concurrency.rs:
