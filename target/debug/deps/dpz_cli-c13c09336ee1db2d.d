/root/repo/target/debug/deps/dpz_cli-c13c09336ee1db2d.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libdpz_cli-c13c09336ee1db2d.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libdpz_cli-c13c09336ee1db2d.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
