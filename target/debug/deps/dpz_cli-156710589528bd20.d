/root/repo/target/debug/deps/dpz_cli-156710589528bd20.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/dpz_cli-156710589528bd20: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
