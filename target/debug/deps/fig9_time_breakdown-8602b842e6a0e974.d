/root/repo/target/debug/deps/fig9_time_breakdown-8602b842e6a0e974.d: crates/bench/src/bin/fig9_time_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_time_breakdown-8602b842e6a0e974.rmeta: crates/bench/src/bin/fig9_time_breakdown.rs Cargo.toml

crates/bench/src/bin/fig9_time_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
