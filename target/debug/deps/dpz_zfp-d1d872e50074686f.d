/root/repo/target/debug/deps/dpz_zfp-d1d872e50074686f.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/debug/deps/dpz_zfp-d1d872e50074686f: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
