/root/repo/target/debug/deps/table5_sampling_accuracy-28fbfee834a4130a.d: crates/bench/src/bin/table5_sampling_accuracy.rs

/root/repo/target/debug/deps/table5_sampling_accuracy-28fbfee834a4130a: crates/bench/src/bin/table5_sampling_accuracy.rs

crates/bench/src/bin/table5_sampling_accuracy.rs:
