/root/repo/target/debug/deps/ablation_transform-63513a5aa4654144.d: crates/bench/src/bin/ablation_transform.rs

/root/repo/target/debug/deps/ablation_transform-63513a5aa4654144: crates/bench/src/bin/ablation_transform.rs

crates/bench/src/bin/ablation_transform.rs:
