/root/repo/target/debug/deps/dpz-4799eeb8738dcb61.d: crates/cli/src/bin/dpz.rs

/root/repo/target/debug/deps/dpz-4799eeb8738dcb61: crates/cli/src/bin/dpz.rs

crates/cli/src/bin/dpz.rs:
