/root/repo/target/debug/deps/ablation_standardize-65e55aabf3551bf7.d: crates/bench/src/bin/ablation_standardize.rs

/root/repo/target/debug/deps/ablation_standardize-65e55aabf3551bf7: crates/bench/src/bin/ablation_standardize.rs

crates/bench/src/bin/ablation_standardize.rs:
