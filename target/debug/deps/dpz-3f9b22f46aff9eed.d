/root/repo/target/debug/deps/dpz-3f9b22f46aff9eed.d: crates/cli/src/bin/dpz.rs Cargo.toml

/root/repo/target/debug/deps/libdpz-3f9b22f46aff9eed.rmeta: crates/cli/src/bin/dpz.rs Cargo.toml

crates/cli/src/bin/dpz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
