/root/repo/target/debug/deps/bench_deflate-af04378c27cb00d6.d: crates/bench/benches/bench_deflate.rs Cargo.toml

/root/repo/target/debug/deps/libbench_deflate-af04378c27cb00d6.rmeta: crates/bench/benches/bench_deflate.rs Cargo.toml

crates/bench/benches/bench_deflate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
