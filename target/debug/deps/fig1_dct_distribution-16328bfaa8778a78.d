/root/repo/target/debug/deps/fig1_dct_distribution-16328bfaa8778a78.d: crates/bench/src/bin/fig1_dct_distribution.rs

/root/repo/target/debug/deps/fig1_dct_distribution-16328bfaa8778a78: crates/bench/src/bin/fig1_dct_distribution.rs

crates/bench/src/bin/fig1_dct_distribution.rs:
