/root/repo/target/debug/deps/dataset_stats-df8d6b8ba2eeba1d.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/debug/deps/dataset_stats-df8d6b8ba2eeba1d: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:
