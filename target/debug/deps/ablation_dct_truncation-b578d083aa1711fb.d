/root/repo/target/debug/deps/ablation_dct_truncation-b578d083aa1711fb.d: crates/bench/src/bin/ablation_dct_truncation.rs

/root/repo/target/debug/deps/ablation_dct_truncation-b578d083aa1711fb: crates/bench/src/bin/ablation_dct_truncation.rs

crates/bench/src/bin/ablation_dct_truncation.rs:
