/root/repo/target/debug/deps/dpz_deflate-08b8b94803ec0465.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

/root/repo/target/debug/deps/libdpz_deflate-08b8b94803ec0465.rlib: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

/root/repo/target/debug/deps/libdpz_deflate-08b8b94803ec0465.rmeta: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/deflate.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/inflate.rs:
crates/deflate/src/lz77.rs:
crates/deflate/src/zlib.rs:
