/root/repo/target/debug/deps/fig2_pca_components-6e501e50bfa98ac4.d: crates/bench/src/bin/fig2_pca_components.rs

/root/repo/target/debug/deps/fig2_pca_components-6e501e50bfa98ac4: crates/bench/src/bin/fig2_pca_components.rs

crates/bench/src/bin/fig2_pca_components.rs:
