/root/repo/target/debug/deps/golden-f4ddf1f21992f180.d: crates/telemetry/tests/golden.rs crates/telemetry/tests/golden/sample.prom crates/telemetry/tests/golden/sample.json

/root/repo/target/debug/deps/golden-f4ddf1f21992f180: crates/telemetry/tests/golden.rs crates/telemetry/tests/golden/sample.prom crates/telemetry/tests/golden/sample.json

crates/telemetry/tests/golden.rs:
crates/telemetry/tests/golden/sample.prom:
crates/telemetry/tests/golden/sample.json:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/telemetry
