/root/repo/target/debug/deps/cross_compressor-46200298ee9dc541.d: tests/cross_compressor.rs Cargo.toml

/root/repo/target/debug/deps/libcross_compressor-46200298ee9dc541.rmeta: tests/cross_compressor.rs Cargo.toml

tests/cross_compressor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
