/root/repo/target/debug/deps/rayon-9531446d1ba411da.d: crates/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-9531446d1ba411da.rlib: crates/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-9531446d1ba411da.rmeta: crates/rayon/src/lib.rs

crates/rayon/src/lib.rs:
