/root/repo/target/debug/deps/dpz_telemetry-b74e4e9e49312cb4.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_telemetry-b74e4e9e49312cb4.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
