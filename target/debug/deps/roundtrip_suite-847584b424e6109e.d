/root/repo/target/debug/deps/roundtrip_suite-847584b424e6109e.d: tests/roundtrip_suite.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip_suite-847584b424e6109e.rmeta: tests/roundtrip_suite.rs Cargo.toml

tests/roundtrip_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
