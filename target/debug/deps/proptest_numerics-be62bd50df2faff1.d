/root/repo/target/debug/deps/proptest_numerics-be62bd50df2faff1.d: crates/linalg/tests/proptest_numerics.rs

/root/repo/target/debug/deps/proptest_numerics-be62bd50df2faff1: crates/linalg/tests/proptest_numerics.rs

crates/linalg/tests/proptest_numerics.rs:
