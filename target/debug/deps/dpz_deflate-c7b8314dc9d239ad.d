/root/repo/target/debug/deps/dpz_deflate-c7b8314dc9d239ad.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

/root/repo/target/debug/deps/dpz_deflate-c7b8314dc9d239ad: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/deflate.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/inflate.rs:
crates/deflate/src/lz77.rs:
crates/deflate/src/zlib.rs:
