/root/repo/target/debug/deps/roundtrip_suite-dfc24504d31129c2.d: tests/roundtrip_suite.rs

/root/repo/target/debug/deps/roundtrip_suite-dfc24504d31129c2: tests/roundtrip_suite.rs

tests/roundtrip_suite.rs:
