/root/repo/target/debug/deps/dpz-b31fcde0fcaa5472.d: src/lib.rs

/root/repo/target/debug/deps/libdpz-b31fcde0fcaa5472.rlib: src/lib.rs

/root/repo/target/debug/deps/libdpz-b31fcde0fcaa5472.rmeta: src/lib.rs

src/lib.rs:
