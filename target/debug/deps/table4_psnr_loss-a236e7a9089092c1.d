/root/repo/target/debug/deps/table4_psnr_loss-a236e7a9089092c1.d: crates/bench/src/bin/table4_psnr_loss.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_psnr_loss-a236e7a9089092c1.rmeta: crates/bench/src/bin/table4_psnr_loss.rs Cargo.toml

crates/bench/src/bin/table4_psnr_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
