/root/repo/target/debug/deps/fig10_vif-b0e7e0090b032c60.d: crates/bench/src/bin/fig10_vif.rs

/root/repo/target/debug/deps/fig10_vif-b0e7e0090b032c60: crates/bench/src/bin/fig10_vif.rs

crates/bench/src/bin/fig10_vif.rs:
