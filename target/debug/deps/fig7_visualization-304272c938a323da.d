/root/repo/target/debug/deps/fig7_visualization-304272c938a323da.d: crates/bench/src/bin/fig7_visualization.rs

/root/repo/target/debug/deps/fig7_visualization-304272c938a323da: crates/bench/src/bin/fig7_visualization.rs

crates/bench/src/bin/fig7_visualization.rs:
