/root/repo/target/debug/deps/proptest_modes-ac60aa1501998368.d: crates/zfp/tests/proptest_modes.rs

/root/repo/target/debug/deps/proptest_modes-ac60aa1501998368: crates/zfp/tests/proptest_modes.rs

crates/zfp/tests/proptest_modes.rs:
