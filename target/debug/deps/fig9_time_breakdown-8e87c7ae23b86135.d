/root/repo/target/debug/deps/fig9_time_breakdown-8e87c7ae23b86135.d: crates/bench/src/bin/fig9_time_breakdown.rs

/root/repo/target/debug/deps/fig9_time_breakdown-8e87c7ae23b86135: crates/bench/src/bin/fig9_time_breakdown.rs

crates/bench/src/bin/fig9_time_breakdown.rs:
