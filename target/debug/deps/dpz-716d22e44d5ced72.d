/root/repo/target/debug/deps/dpz-716d22e44d5ced72.d: crates/cli/src/bin/dpz.rs

/root/repo/target/debug/deps/dpz-716d22e44d5ced72: crates/cli/src/bin/dpz.rs

crates/cli/src/bin/dpz.rs:
