/root/repo/target/debug/deps/table1_datasets-a87c8c5555147b63.d: crates/bench/src/bin/table1_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_datasets-a87c8c5555147b63.rmeta: crates/bench/src/bin/table1_datasets.rs Cargo.toml

crates/bench/src/bin/table1_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
