/root/repo/target/debug/deps/dpz_linalg-ab28e4094bdaa46b.d: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

/root/repo/target/debug/deps/dpz_linalg-ab28e4094bdaa46b: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs

crates/linalg/src/lib.rs:
crates/linalg/src/dct.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/fft.rs:
crates/linalg/src/fit.rs:
crates/linalg/src/jacobi.rs:
crates/linalg/src/knee.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/wavelet.rs:
