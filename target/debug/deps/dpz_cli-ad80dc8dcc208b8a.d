/root/repo/target/debug/deps/dpz_cli-ad80dc8dcc208b8a.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libdpz_cli-ad80dc8dcc208b8a.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libdpz_cli-ad80dc8dcc208b8a.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
