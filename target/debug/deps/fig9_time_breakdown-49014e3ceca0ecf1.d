/root/repo/target/debug/deps/fig9_time_breakdown-49014e3ceca0ecf1.d: crates/bench/src/bin/fig9_time_breakdown.rs

/root/repo/target/debug/deps/fig9_time_breakdown-49014e3ceca0ecf1: crates/bench/src/bin/fig9_time_breakdown.rs

crates/bench/src/bin/fig9_time_breakdown.rs:
