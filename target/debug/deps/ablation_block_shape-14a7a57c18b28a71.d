/root/repo/target/debug/deps/ablation_block_shape-14a7a57c18b28a71.d: crates/bench/src/bin/ablation_block_shape.rs

/root/repo/target/debug/deps/ablation_block_shape-14a7a57c18b28a71: crates/bench/src/bin/ablation_block_shape.rs

crates/bench/src/bin/ablation_block_shape.rs:
