/root/repo/target/debug/deps/dpz_bench-53a0b5ed8269b5d5.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libdpz_bench-53a0b5ed8269b5d5.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libdpz_bench-53a0b5ed8269b5d5.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
