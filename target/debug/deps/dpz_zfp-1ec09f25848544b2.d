/root/repo/target/debug/deps/dpz_zfp-1ec09f25848544b2.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/debug/deps/dpz_zfp-1ec09f25848544b2: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
