/root/repo/target/debug/deps/dpz_sz-c3463af4aad18c99.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/debug/deps/dpz_sz-c3463af4aad18c99: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
