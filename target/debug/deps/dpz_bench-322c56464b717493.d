/root/repo/target/debug/deps/dpz_bench-322c56464b717493.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/dpz_bench-322c56464b717493: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
