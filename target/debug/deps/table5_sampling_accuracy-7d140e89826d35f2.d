/root/repo/target/debug/deps/table5_sampling_accuracy-7d140e89826d35f2.d: crates/bench/src/bin/table5_sampling_accuracy.rs

/root/repo/target/debug/deps/table5_sampling_accuracy-7d140e89826d35f2: crates/bench/src/bin/table5_sampling_accuracy.rs

crates/bench/src/bin/table5_sampling_accuracy.rs:
