/root/repo/target/debug/deps/fig3_information_preservation-da2deaea4a05aa9b.d: crates/bench/src/bin/fig3_information_preservation.rs

/root/repo/target/debug/deps/fig3_information_preservation-da2deaea4a05aa9b: crates/bench/src/bin/fig3_information_preservation.rs

crates/bench/src/bin/fig3_information_preservation.rs:
