/root/repo/target/debug/deps/dpz_bench-994f96eb405025e3.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/dpz_bench-994f96eb405025e3: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
