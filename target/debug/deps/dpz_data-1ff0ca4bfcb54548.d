/root/repo/target/debug/deps/dpz_data-1ff0ca4bfcb54548.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/dpz_data-1ff0ca4bfcb54548: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/io.rs:
crates/data/src/metrics.rs:
crates/data/src/pgm.rs:
crates/data/src/rng.rs:
crates/data/src/stats.rs:
crates/data/src/synthetic.rs:
