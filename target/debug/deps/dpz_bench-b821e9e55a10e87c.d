/root/repo/target/debug/deps/dpz_bench-b821e9e55a10e87c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libdpz_bench-b821e9e55a10e87c.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

/root/repo/target/debug/deps/libdpz_bench-b821e9e55a10e87c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
