/root/repo/target/debug/deps/dpz_cli-a13f69cd0a4754eb.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_cli-a13f69cd0a4754eb.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
