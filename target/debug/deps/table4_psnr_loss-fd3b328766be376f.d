/root/repo/target/debug/deps/table4_psnr_loss-fd3b328766be376f.d: crates/bench/src/bin/table4_psnr_loss.rs

/root/repo/target/debug/deps/table4_psnr_loss-fd3b328766be376f: crates/bench/src/bin/table4_psnr_loss.rs

crates/bench/src/bin/table4_psnr_loss.rs:
