/root/repo/target/debug/deps/fig3_information_preservation-d6a2e178c59b3051.d: crates/bench/src/bin/fig3_information_preservation.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_information_preservation-d6a2e178c59b3051.rmeta: crates/bench/src/bin/fig3_information_preservation.rs Cargo.toml

crates/bench/src/bin/fig3_information_preservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
