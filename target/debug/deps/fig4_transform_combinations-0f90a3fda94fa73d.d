/root/repo/target/debug/deps/fig4_transform_combinations-0f90a3fda94fa73d.d: crates/bench/src/bin/fig4_transform_combinations.rs

/root/repo/target/debug/deps/fig4_transform_combinations-0f90a3fda94fa73d: crates/bench/src/bin/fig4_transform_combinations.rs

crates/bench/src/bin/fig4_transform_combinations.rs:
