/root/repo/target/debug/deps/proptest_pipeline-bde1ccf9e18a8025.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-bde1ccf9e18a8025: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
