/root/repo/target/debug/deps/fig1_dct_distribution-da1ff336b077d903.d: crates/bench/src/bin/fig1_dct_distribution.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_dct_distribution-da1ff336b077d903.rmeta: crates/bench/src/bin/fig1_dct_distribution.rs Cargo.toml

crates/bench/src/bin/fig1_dct_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
