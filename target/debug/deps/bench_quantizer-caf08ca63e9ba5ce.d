/root/repo/target/debug/deps/bench_quantizer-caf08ca63e9ba5ce.d: crates/bench/benches/bench_quantizer.rs Cargo.toml

/root/repo/target/debug/deps/libbench_quantizer-caf08ca63e9ba5ce.rmeta: crates/bench/benches/bench_quantizer.rs Cargo.toml

crates/bench/benches/bench_quantizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
