/root/repo/target/debug/deps/fig6_rate_distortion-5b2cca2728539f9c.d: crates/bench/src/bin/fig6_rate_distortion.rs

/root/repo/target/debug/deps/fig6_rate_distortion-5b2cca2728539f9c: crates/bench/src/bin/fig6_rate_distortion.rs

crates/bench/src/bin/fig6_rate_distortion.rs:
