/root/repo/target/debug/deps/dpz-4639a07c909c19f0.d: src/lib.rs

/root/repo/target/debug/deps/libdpz-4639a07c909c19f0.rlib: src/lib.rs

/root/repo/target/debug/deps/libdpz-4639a07c909c19f0.rmeta: src/lib.rs

src/lib.rs:
