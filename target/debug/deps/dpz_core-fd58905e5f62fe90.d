/root/repo/target/debug/deps/dpz_core-fd58905e5f62fe90.d: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/dpz_core-fd58905e5f62fe90: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/chunked.rs:
crates/core/src/combos.rs:
crates/core/src/config.rs:
crates/core/src/container.rs:
crates/core/src/decompose.rs:
crates/core/src/kpca.rs:
crates/core/src/pipeline.rs:
crates/core/src/quantize.rs:
crates/core/src/sampling.rs:
