/root/repo/target/debug/deps/fig2_pca_components-7ddb4b93d66507be.d: crates/bench/src/bin/fig2_pca_components.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_pca_components-7ddb4b93d66507be.rmeta: crates/bench/src/bin/fig2_pca_components.rs Cargo.toml

crates/bench/src/bin/fig2_pca_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
