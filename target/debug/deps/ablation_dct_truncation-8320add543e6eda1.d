/root/repo/target/debug/deps/ablation_dct_truncation-8320add543e6eda1.d: crates/bench/src/bin/ablation_dct_truncation.rs

/root/repo/target/debug/deps/ablation_dct_truncation-8320add543e6eda1: crates/bench/src/bin/ablation_dct_truncation.rs

crates/bench/src/bin/ablation_dct_truncation.rs:
