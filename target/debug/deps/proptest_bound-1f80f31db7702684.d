/root/repo/target/debug/deps/proptest_bound-1f80f31db7702684.d: crates/sz/tests/proptest_bound.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_bound-1f80f31db7702684.rmeta: crates/sz/tests/proptest_bound.rs Cargo.toml

crates/sz/tests/proptest_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
