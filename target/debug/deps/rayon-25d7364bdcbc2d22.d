/root/repo/target/debug/deps/rayon-25d7364bdcbc2d22.d: crates/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-25d7364bdcbc2d22.rmeta: crates/rayon/src/lib.rs Cargo.toml

crates/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
