/root/repo/target/debug/deps/ablation_block_shape-1e074ebdb7df5bc7.d: crates/bench/src/bin/ablation_block_shape.rs Cargo.toml

/root/repo/target/debug/deps/libablation_block_shape-1e074ebdb7df5bc7.rmeta: crates/bench/src/bin/ablation_block_shape.rs Cargo.toml

crates/bench/src/bin/ablation_block_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
