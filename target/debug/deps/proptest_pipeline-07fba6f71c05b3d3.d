/root/repo/target/debug/deps/proptest_pipeline-07fba6f71c05b3d3.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-07fba6f71c05b3d3: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
