/root/repo/target/debug/deps/concurrency-87a9d32ff5cae705.d: crates/telemetry/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-87a9d32ff5cae705.rmeta: crates/telemetry/tests/concurrency.rs Cargo.toml

crates/telemetry/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
