/root/repo/target/debug/deps/fig7_visualization-0a8221e11243b914.d: crates/bench/src/bin/fig7_visualization.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_visualization-0a8221e11243b914.rmeta: crates/bench/src/bin/fig7_visualization.rs Cargo.toml

crates/bench/src/bin/fig7_visualization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
