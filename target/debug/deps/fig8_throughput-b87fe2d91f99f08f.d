/root/repo/target/debug/deps/fig8_throughput-b87fe2d91f99f08f.d: crates/bench/src/bin/fig8_throughput.rs

/root/repo/target/debug/deps/fig8_throughput-b87fe2d91f99f08f: crates/bench/src/bin/fig8_throughput.rs

crates/bench/src/bin/fig8_throughput.rs:
