/root/repo/target/debug/deps/table3_cr_breakdown-9fc88d58dfdba8fe.d: crates/bench/src/bin/table3_cr_breakdown.rs

/root/repo/target/debug/deps/table3_cr_breakdown-9fc88d58dfdba8fe: crates/bench/src/bin/table3_cr_breakdown.rs

crates/bench/src/bin/table3_cr_breakdown.rs:
