/root/repo/target/debug/deps/dpz-fc29550b489c3e7d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpz-fc29550b489c3e7d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
