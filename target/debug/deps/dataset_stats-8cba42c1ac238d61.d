/root/repo/target/debug/deps/dataset_stats-8cba42c1ac238d61.d: crates/bench/src/bin/dataset_stats.rs

/root/repo/target/debug/deps/dataset_stats-8cba42c1ac238d61: crates/bench/src/bin/dataset_stats.rs

crates/bench/src/bin/dataset_stats.rs:
