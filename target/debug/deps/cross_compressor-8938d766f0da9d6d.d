/root/repo/target/debug/deps/cross_compressor-8938d766f0da9d6d.d: tests/cross_compressor.rs

/root/repo/target/debug/deps/cross_compressor-8938d766f0da9d6d: tests/cross_compressor.rs

tests/cross_compressor.rs:
