/root/repo/target/debug/deps/dpz_telemetry-4b4378833e7ca818.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/dpz_telemetry-4b4378833e7ca818: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
