/root/repo/target/debug/deps/ablation_transform-12ae3b6f310f80da.d: crates/bench/src/bin/ablation_transform.rs

/root/repo/target/debug/deps/ablation_transform-12ae3b6f310f80da: crates/bench/src/bin/ablation_transform.rs

crates/bench/src/bin/ablation_transform.rs:
