/root/repo/target/debug/deps/dpz_data-76073bb6b8899464.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libdpz_data-76073bb6b8899464.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

/root/repo/target/debug/deps/libdpz_data-76073bb6b8899464.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/io.rs:
crates/data/src/metrics.rs:
crates/data/src/pgm.rs:
crates/data/src/rng.rs:
crates/data/src/stats.rs:
crates/data/src/synthetic.rs:
