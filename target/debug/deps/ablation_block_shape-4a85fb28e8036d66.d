/root/repo/target/debug/deps/ablation_block_shape-4a85fb28e8036d66.d: crates/bench/src/bin/ablation_block_shape.rs

/root/repo/target/debug/deps/ablation_block_shape-4a85fb28e8036d66: crates/bench/src/bin/ablation_block_shape.rs

crates/bench/src/bin/ablation_block_shape.rs:
