/root/repo/target/debug/deps/extensions-bc4971162f2e6a28.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-bc4971162f2e6a28.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
