/root/repo/target/debug/deps/dpz_cli-8d6d01dea132685d.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/dpz_cli-8d6d01dea132685d: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
