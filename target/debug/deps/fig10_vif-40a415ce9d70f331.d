/root/repo/target/debug/deps/fig10_vif-40a415ce9d70f331.d: crates/bench/src/bin/fig10_vif.rs

/root/repo/target/debug/deps/fig10_vif-40a415ce9d70f331: crates/bench/src/bin/fig10_vif.rs

crates/bench/src/bin/fig10_vif.rs:
