/root/repo/target/debug/deps/dpz_linalg-f17885dfad728f60.d: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_linalg-f17885dfad728f60.rmeta: crates/linalg/src/lib.rs crates/linalg/src/dct.rs crates/linalg/src/eigen.rs crates/linalg/src/fft.rs crates/linalg/src/fit.rs crates/linalg/src/jacobi.rs crates/linalg/src/knee.rs crates/linalg/src/matrix.rs crates/linalg/src/pca.rs crates/linalg/src/stats.rs crates/linalg/src/svd.rs crates/linalg/src/wavelet.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/dct.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/fft.rs:
crates/linalg/src/fit.rs:
crates/linalg/src/jacobi.rs:
crates/linalg/src/knee.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/pca.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/svd.rs:
crates/linalg/src/wavelet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
