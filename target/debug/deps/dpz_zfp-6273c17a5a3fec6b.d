/root/repo/target/debug/deps/dpz_zfp-6273c17a5a3fec6b.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_zfp-6273c17a5a3fec6b.rmeta: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs Cargo.toml

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
