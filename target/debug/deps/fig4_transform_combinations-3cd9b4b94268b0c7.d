/root/repo/target/debug/deps/fig4_transform_combinations-3cd9b4b94268b0c7.d: crates/bench/src/bin/fig4_transform_combinations.rs

/root/repo/target/debug/deps/fig4_transform_combinations-3cd9b4b94268b0c7: crates/bench/src/bin/fig4_transform_combinations.rs

crates/bench/src/bin/fig4_transform_combinations.rs:
