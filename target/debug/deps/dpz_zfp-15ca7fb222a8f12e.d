/root/repo/target/debug/deps/dpz_zfp-15ca7fb222a8f12e.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/debug/deps/libdpz_zfp-15ca7fb222a8f12e.rlib: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

/root/repo/target/debug/deps/libdpz_zfp-15ca7fb222a8f12e.rmeta: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
