/root/repo/target/debug/deps/fig9_time_breakdown-0bb8eccb08a98091.d: crates/bench/src/bin/fig9_time_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_time_breakdown-0bb8eccb08a98091.rmeta: crates/bench/src/bin/fig9_time_breakdown.rs Cargo.toml

crates/bench/src/bin/fig9_time_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
