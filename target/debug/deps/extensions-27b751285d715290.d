/root/repo/target/debug/deps/extensions-27b751285d715290.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-27b751285d715290: tests/extensions.rs

tests/extensions.rs:
