/root/repo/target/debug/deps/ablation_transform-8c14575c52be04b2.d: crates/bench/src/bin/ablation_transform.rs Cargo.toml

/root/repo/target/debug/deps/libablation_transform-8c14575c52be04b2.rmeta: crates/bench/src/bin/ablation_transform.rs Cargo.toml

crates/bench/src/bin/ablation_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
