/root/repo/target/debug/deps/proptest_modes-ad7a020fb3049bfb.d: crates/zfp/tests/proptest_modes.rs

/root/repo/target/debug/deps/proptest_modes-ad7a020fb3049bfb: crates/zfp/tests/proptest_modes.rs

crates/zfp/tests/proptest_modes.rs:
