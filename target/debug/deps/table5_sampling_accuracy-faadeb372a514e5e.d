/root/repo/target/debug/deps/table5_sampling_accuracy-faadeb372a514e5e.d: crates/bench/src/bin/table5_sampling_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_sampling_accuracy-faadeb372a514e5e.rmeta: crates/bench/src/bin/table5_sampling_accuracy.rs Cargo.toml

crates/bench/src/bin/table5_sampling_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
