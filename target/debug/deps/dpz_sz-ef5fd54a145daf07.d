/root/repo/target/debug/deps/dpz_sz-ef5fd54a145daf07.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/debug/deps/dpz_sz-ef5fd54a145daf07: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
