/root/repo/target/debug/deps/dpz_telemetry-9f31e169f21932ee.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_telemetry-9f31e169f21932ee.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
