/root/repo/target/debug/deps/fig8_throughput-afe518bed32065e5.d: crates/bench/src/bin/fig8_throughput.rs

/root/repo/target/debug/deps/fig8_throughput-afe518bed32065e5: crates/bench/src/bin/fig8_throughput.rs

crates/bench/src/bin/fig8_throughput.rs:
