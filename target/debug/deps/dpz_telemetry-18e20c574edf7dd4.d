/root/repo/target/debug/deps/dpz_telemetry-18e20c574edf7dd4.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libdpz_telemetry-18e20c574edf7dd4.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libdpz_telemetry-18e20c574edf7dd4.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
