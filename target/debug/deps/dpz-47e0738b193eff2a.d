/root/repo/target/debug/deps/dpz-47e0738b193eff2a.d: crates/cli/src/bin/dpz.rs

/root/repo/target/debug/deps/dpz-47e0738b193eff2a: crates/cli/src/bin/dpz.rs

crates/cli/src/bin/dpz.rs:
