/root/repo/target/debug/deps/ablation_dct_truncation-ccf997b4e47b0b8a.d: crates/bench/src/bin/ablation_dct_truncation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dct_truncation-ccf997b4e47b0b8a.rmeta: crates/bench/src/bin/ablation_dct_truncation.rs Cargo.toml

crates/bench/src/bin/ablation_dct_truncation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
