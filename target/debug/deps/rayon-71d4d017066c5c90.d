/root/repo/target/debug/deps/rayon-71d4d017066c5c90.d: crates/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-71d4d017066c5c90: crates/rayon/src/lib.rs

crates/rayon/src/lib.rs:
