/root/repo/target/debug/deps/bench_eigen-df0005b61a40e937.d: crates/bench/benches/bench_eigen.rs Cargo.toml

/root/repo/target/debug/deps/libbench_eigen-df0005b61a40e937.rmeta: crates/bench/benches/bench_eigen.rs Cargo.toml

crates/bench/benches/bench_eigen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
