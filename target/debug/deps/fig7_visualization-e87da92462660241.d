/root/repo/target/debug/deps/fig7_visualization-e87da92462660241.d: crates/bench/src/bin/fig7_visualization.rs

/root/repo/target/debug/deps/fig7_visualization-e87da92462660241: crates/bench/src/bin/fig7_visualization.rs

crates/bench/src/bin/fig7_visualization.rs:
