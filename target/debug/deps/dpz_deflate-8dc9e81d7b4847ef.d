/root/repo/target/debug/deps/dpz_deflate-8dc9e81d7b4847ef.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_deflate-8dc9e81d7b4847ef.rmeta: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/deflate.rs crates/deflate/src/huffman.rs crates/deflate/src/inflate.rs crates/deflate/src/lz77.rs crates/deflate/src/zlib.rs Cargo.toml

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/deflate.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/inflate.rs:
crates/deflate/src/lz77.rs:
crates/deflate/src/zlib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
