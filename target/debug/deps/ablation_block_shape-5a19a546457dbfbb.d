/root/repo/target/debug/deps/ablation_block_shape-5a19a546457dbfbb.d: crates/bench/src/bin/ablation_block_shape.rs Cargo.toml

/root/repo/target/debug/deps/libablation_block_shape-5a19a546457dbfbb.rmeta: crates/bench/src/bin/ablation_block_shape.rs Cargo.toml

crates/bench/src/bin/ablation_block_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
