/root/repo/target/debug/deps/table1_datasets-691795c96da29b71.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/debug/deps/table1_datasets-691795c96da29b71: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
