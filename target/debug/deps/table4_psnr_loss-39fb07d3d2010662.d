/root/repo/target/debug/deps/table4_psnr_loss-39fb07d3d2010662.d: crates/bench/src/bin/table4_psnr_loss.rs

/root/repo/target/debug/deps/table4_psnr_loss-39fb07d3d2010662: crates/bench/src/bin/table4_psnr_loss.rs

crates/bench/src/bin/table4_psnr_loss.rs:
