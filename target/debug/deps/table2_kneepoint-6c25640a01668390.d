/root/repo/target/debug/deps/table2_kneepoint-6c25640a01668390.d: crates/bench/src/bin/table2_kneepoint.rs

/root/repo/target/debug/deps/table2_kneepoint-6c25640a01668390: crates/bench/src/bin/table2_kneepoint.rs

crates/bench/src/bin/table2_kneepoint.rs:
