/root/repo/target/debug/deps/golden-badc4e9734a89511.d: crates/telemetry/tests/golden.rs crates/telemetry/tests/golden/sample.prom crates/telemetry/tests/golden/sample.json Cargo.toml

/root/repo/target/debug/deps/libgolden-badc4e9734a89511.rmeta: crates/telemetry/tests/golden.rs crates/telemetry/tests/golden/sample.prom crates/telemetry/tests/golden/sample.json Cargo.toml

crates/telemetry/tests/golden.rs:
crates/telemetry/tests/golden/sample.prom:
crates/telemetry/tests/golden/sample.json:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/telemetry
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
