/root/repo/target/debug/deps/dpz_core-1fc2b7ac06b5270e.d: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_core-1fc2b7ac06b5270e.rmeta: crates/core/src/lib.rs crates/core/src/chunked.rs crates/core/src/combos.rs crates/core/src/config.rs crates/core/src/container.rs crates/core/src/decompose.rs crates/core/src/kpca.rs crates/core/src/pipeline.rs crates/core/src/quantize.rs crates/core/src/sampling.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/chunked.rs:
crates/core/src/combos.rs:
crates/core/src/config.rs:
crates/core/src/container.rs:
crates/core/src/decompose.rs:
crates/core/src/kpca.rs:
crates/core/src/pipeline.rs:
crates/core/src/quantize.rs:
crates/core/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
