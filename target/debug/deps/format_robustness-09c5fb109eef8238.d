/root/repo/target/debug/deps/format_robustness-09c5fb109eef8238.d: tests/format_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libformat_robustness-09c5fb109eef8238.rmeta: tests/format_robustness.rs Cargo.toml

tests/format_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
