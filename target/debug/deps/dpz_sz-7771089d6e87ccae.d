/root/repo/target/debug/deps/dpz_sz-7771089d6e87ccae.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/debug/deps/libdpz_sz-7771089d6e87ccae.rlib: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/debug/deps/libdpz_sz-7771089d6e87ccae.rmeta: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
