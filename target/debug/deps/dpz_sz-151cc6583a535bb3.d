/root/repo/target/debug/deps/dpz_sz-151cc6583a535bb3.d: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/debug/deps/libdpz_sz-151cc6583a535bb3.rlib: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

/root/repo/target/debug/deps/libdpz_sz-151cc6583a535bb3.rmeta: crates/sz/src/lib.rs crates/sz/src/codec.rs crates/sz/src/lorenzo.rs crates/sz/src/quantizer.rs crates/sz/src/regression.rs

crates/sz/src/lib.rs:
crates/sz/src/codec.rs:
crates/sz/src/lorenzo.rs:
crates/sz/src/quantizer.rs:
crates/sz/src/regression.rs:
