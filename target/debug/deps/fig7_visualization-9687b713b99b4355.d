/root/repo/target/debug/deps/fig7_visualization-9687b713b99b4355.d: crates/bench/src/bin/fig7_visualization.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_visualization-9687b713b99b4355.rmeta: crates/bench/src/bin/fig7_visualization.rs Cargo.toml

crates/bench/src/bin/fig7_visualization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
