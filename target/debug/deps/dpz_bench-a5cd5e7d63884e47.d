/root/repo/target/debug/deps/dpz_bench-a5cd5e7d63884e47.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_bench-a5cd5e7d63884e47.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/runners.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/runners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
