/root/repo/target/debug/deps/table3_cr_breakdown-98df23fd11878db0.d: crates/bench/src/bin/table3_cr_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_cr_breakdown-98df23fd11878db0.rmeta: crates/bench/src/bin/table3_cr_breakdown.rs Cargo.toml

crates/bench/src/bin/table3_cr_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
