/root/repo/target/debug/deps/dpz_cli-62fc782a26673395.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_cli-62fc782a26673395.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
