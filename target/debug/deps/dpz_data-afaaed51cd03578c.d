/root/repo/target/debug/deps/dpz_data-afaaed51cd03578c.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_data-afaaed51cd03578c.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/io.rs crates/data/src/metrics.rs crates/data/src/pgm.rs crates/data/src/rng.rs crates/data/src/stats.rs crates/data/src/synthetic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/io.rs:
crates/data/src/metrics.rs:
crates/data/src/pgm.rs:
crates/data/src/rng.rs:
crates/data/src/stats.rs:
crates/data/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
