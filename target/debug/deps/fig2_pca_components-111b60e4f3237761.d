/root/repo/target/debug/deps/fig2_pca_components-111b60e4f3237761.d: crates/bench/src/bin/fig2_pca_components.rs

/root/repo/target/debug/deps/fig2_pca_components-111b60e4f3237761: crates/bench/src/bin/fig2_pca_components.rs

crates/bench/src/bin/fig2_pca_components.rs:
