/root/repo/target/debug/deps/fig6_rate_distortion-954a331ed94fa7ca.d: crates/bench/src/bin/fig6_rate_distortion.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_rate_distortion-954a331ed94fa7ca.rmeta: crates/bench/src/bin/fig6_rate_distortion.rs Cargo.toml

crates/bench/src/bin/fig6_rate_distortion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
