/root/repo/target/debug/deps/dpz_zfp-05898d74483a0e11.d: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libdpz_zfp-05898d74483a0e11.rmeta: crates/zfp/src/lib.rs crates/zfp/src/block.rs crates/zfp/src/codec.rs crates/zfp/src/transform.rs Cargo.toml

crates/zfp/src/lib.rs:
crates/zfp/src/block.rs:
crates/zfp/src/codec.rs:
crates/zfp/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
