/root/repo/target/debug/deps/dpz-d0f97abc453f2558.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdpz-d0f97abc453f2558.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
