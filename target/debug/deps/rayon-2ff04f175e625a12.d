/root/repo/target/debug/deps/rayon-2ff04f175e625a12.d: crates/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-2ff04f175e625a12.rmeta: crates/rayon/src/lib.rs Cargo.toml

crates/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
