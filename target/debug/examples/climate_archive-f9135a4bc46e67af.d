/root/repo/target/debug/examples/climate_archive-f9135a4bc46e67af.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-f9135a4bc46e67af: examples/climate_archive.rs

examples/climate_archive.rs:
