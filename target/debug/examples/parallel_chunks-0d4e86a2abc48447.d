/root/repo/target/debug/examples/parallel_chunks-0d4e86a2abc48447.d: examples/parallel_chunks.rs

/root/repo/target/debug/examples/parallel_chunks-0d4e86a2abc48447: examples/parallel_chunks.rs

examples/parallel_chunks.rs:
