/root/repo/target/debug/examples/turbulence_checkpoint-0b1afd319041ca0c.d: examples/turbulence_checkpoint.rs Cargo.toml

/root/repo/target/debug/examples/libturbulence_checkpoint-0b1afd319041ca0c.rmeta: examples/turbulence_checkpoint.rs Cargo.toml

examples/turbulence_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
