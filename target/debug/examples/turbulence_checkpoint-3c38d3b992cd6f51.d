/root/repo/target/debug/examples/turbulence_checkpoint-3c38d3b992cd6f51.d: examples/turbulence_checkpoint.rs

/root/repo/target/debug/examples/turbulence_checkpoint-3c38d3b992cd6f51: examples/turbulence_checkpoint.rs

examples/turbulence_checkpoint.rs:
