/root/repo/target/debug/examples/climate_archive-4934af0f9f09deb5.d: examples/climate_archive.rs

/root/repo/target/debug/examples/climate_archive-4934af0f9f09deb5: examples/climate_archive.rs

examples/climate_archive.rs:
