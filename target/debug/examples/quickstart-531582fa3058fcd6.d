/root/repo/target/debug/examples/quickstart-531582fa3058fcd6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-531582fa3058fcd6: examples/quickstart.rs

examples/quickstart.rs:
