/root/repo/target/debug/examples/parallel_chunks-c5014d5218820dd5.d: examples/parallel_chunks.rs

/root/repo/target/debug/examples/parallel_chunks-c5014d5218820dd5: examples/parallel_chunks.rs

examples/parallel_chunks.rs:
