/root/repo/target/debug/examples/compressibility_probe-a58d802b979ae9e2.d: examples/compressibility_probe.rs Cargo.toml

/root/repo/target/debug/examples/libcompressibility_probe-a58d802b979ae9e2.rmeta: examples/compressibility_probe.rs Cargo.toml

examples/compressibility_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
