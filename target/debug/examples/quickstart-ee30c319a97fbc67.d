/root/repo/target/debug/examples/quickstart-ee30c319a97fbc67.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ee30c319a97fbc67: examples/quickstart.rs

examples/quickstart.rs:
