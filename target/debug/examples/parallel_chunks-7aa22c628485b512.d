/root/repo/target/debug/examples/parallel_chunks-7aa22c628485b512.d: examples/parallel_chunks.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_chunks-7aa22c628485b512.rmeta: examples/parallel_chunks.rs Cargo.toml

examples/parallel_chunks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
