/root/repo/target/debug/examples/climate_archive-d285cc9709d5d7d0.d: examples/climate_archive.rs Cargo.toml

/root/repo/target/debug/examples/libclimate_archive-d285cc9709d5d7d0.rmeta: examples/climate_archive.rs Cargo.toml

examples/climate_archive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
