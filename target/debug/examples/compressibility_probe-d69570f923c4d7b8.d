/root/repo/target/debug/examples/compressibility_probe-d69570f923c4d7b8.d: examples/compressibility_probe.rs

/root/repo/target/debug/examples/compressibility_probe-d69570f923c4d7b8: examples/compressibility_probe.rs

examples/compressibility_probe.rs:
