/root/repo/target/debug/examples/compressibility_probe-bb762061a8056808.d: examples/compressibility_probe.rs

/root/repo/target/debug/examples/compressibility_probe-bb762061a8056808: examples/compressibility_probe.rs

examples/compressibility_probe.rs:
