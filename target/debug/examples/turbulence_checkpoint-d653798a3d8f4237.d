/root/repo/target/debug/examples/turbulence_checkpoint-d653798a3d8f4237.d: examples/turbulence_checkpoint.rs

/root/repo/target/debug/examples/turbulence_checkpoint-d653798a3d8f4237: examples/turbulence_checkpoint.rs

examples/turbulence_checkpoint.rs:
